"""Strategy catalogue for portfolio synthesis.

A *strategy* is just a named :class:`~repro.core.SynthesisOptions`
configuration.  The default portfolio covers the paper's three regimes:

* ``monolithic`` — the complete formulation (all simple routes, one SMT
  query); slowest but explores the whole solution space.
* ``routes-K`` for K in {1, 2, 3} — the route-subset heuristic
  (Sec. V-C-1); small K solves fast but may miss solvable instances.
* ``stages-S`` for S in {2, 4} — the incremental heuristic (Sec. V-C-2)
  over a modest route subset; scales with message count.

Racing them (see :mod:`repro.portfolio.engine`) gets the wall-clock time
of the *fastest* regime for each instance while keeping the coverage of
the complete one — exactly the trade-off the paper's Figs. 4-6 chart one
configuration at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..core.synthesizer import MODE_STABILITY, SynthesisOptions


@dataclass(frozen=True)
class Strategy:
    """One named synthesis configuration entered into the race.

    ``timeout`` bounds the strategy's *first attempt* in seconds (None =
    only the race's global deadline applies).  ``restarts`` is the budget
    schedule for further attempts: when an attempt times out while the
    race is undecided, the engine re-queues the strategy with the next
    budget from the schedule.  Short first budgets let a constrained
    worker pool probe every strategy quickly; the schedule revisits slow
    ones with growing budgets only if nothing has won yet — all attempts
    stay clamped to the global deadline (deadline-aware racing).

    ``max_crash_retries`` bounds a different failure mode: an attempt
    that *dies without reporting* (SIGKILL/OOM, a dropped result frame)
    or is killed for missed heartbeats is relaunched — re-seeded from
    the race's knowledge pool, after capped exponential backoff — up to
    this many times before the strategy is declared crash-exhausted and
    handed to the serial fallback (see ``docs/robustness.md``).
    """

    name: str
    options: SynthesisOptions
    timeout: Optional[float] = None
    restarts: Tuple[float, ...] = ()
    max_crash_retries: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("strategy needs a non-empty name")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError("strategy timeout must be >= 0")
        if self.restarts and self.timeout is None:
            raise ValueError("a restart schedule needs an initial timeout")
        # Tolerate lists from callers; the engine treats it as a queue.
        if not isinstance(self.restarts, tuple):
            object.__setattr__(self, "restarts", tuple(self.restarts))
        # A zero/negative restart budget would re-queue with a deadline
        # already in the past: expire() and the launch loop would spin
        # until the schedule drains without ever giving the solver time.
        if any(budget is None or budget <= 0 for budget in self.restarts):
            raise ValueError("restart budgets must all be positive")
        if self.max_crash_retries < 0:
            raise ValueError("max_crash_retries must be >= 0")

    @property
    def is_complete(self) -> bool:
        """Does this strategy explore the *whole* solution space?

        Only a complete strategy's ``unsat`` is a proof of infeasibility;
        the route-subset and incremental heuristics may fail on solvable
        instances (paper Sec. V-C), so their verdicts never decide a
        portfolio race (see ``PortfolioResult.verdict_by``).
        """
        return self.options.routes is None and self.options.stages == 1


def with_restart_schedule(
    strategies: Sequence[Strategy],
    base_timeout: float,
    factor: float = 2.0,
    rounds: int = 2,
) -> List[Strategy]:
    """Give every strategy a geometric per-attempt budget schedule.

    Attempt ``i`` gets ``base_timeout * factor**i`` seconds, for
    ``rounds`` restart rounds after the first attempt — the standard
    restart-schedule racing setup for pools smaller than the portfolio.
    """
    if base_timeout <= 0:
        raise ValueError("base_timeout must be positive")
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    schedule = tuple(base_timeout * factor ** (i + 1) for i in range(rounds))
    return [
        replace(s, timeout=base_timeout, restarts=schedule)
        for s in strategies
    ]


def with_backend(strategies: Sequence[Strategy], backend: str) -> List[Strategy]:
    """Re-target every strategy at a different solving backend.

    Strategies are :class:`repro.api.Session` clients through the
    synthesis driver: each worker runs its whole synthesis on one
    session whose backend is named by its options, and the per-check
    statistics stream tags every entry with that backend — so portfolio
    accounting and BENCH trajectories attribute work per backend.
    """
    return [
        replace(s, options=replace(s.options, backend=backend))
        for s in strategies
    ]


def default_portfolio(
    mode: str = MODE_STABILITY,
    route_subsets: Sequence[int] = (1, 2, 3),
    stage_counts: Sequence[int] = (2, 4),
    include_monolithic: bool = True,
    incremental_routes: Optional[int] = 3,
    path_cutoff: Optional[int] = None,
    backend: str = "native",
    repair: bool = False,
) -> List[Strategy]:
    """The paper-derived strategy mix described in the module docstring.

    ``backend`` names the session backend every strategy solves on;
    ``repair`` opts the incremental strategies into core-driven stage
    repair (their sat-coverage grows beyond the paper's heuristic, so it
    defaults off).
    """
    portfolio: List[Strategy] = []
    if include_monolithic:
        portfolio.append(
            Strategy(
                "monolithic",
                SynthesisOptions(mode=mode, routes=None, stages=1,
                                 path_cutoff=path_cutoff, backend=backend),
            )
        )
    for k in route_subsets:
        portfolio.append(
            Strategy(
                f"routes-{k}",
                SynthesisOptions(mode=mode, routes=k, stages=1,
                                 path_cutoff=path_cutoff, backend=backend),
            )
        )
    for s in stage_counts:
        portfolio.append(
            Strategy(
                f"stages-{s}",
                SynthesisOptions(mode=mode, routes=incremental_routes,
                                 stages=s, path_cutoff=path_cutoff,
                                 backend=backend, repair=repair),
            )
        )
    if not portfolio:
        raise ValueError("portfolio is empty: enable at least one strategy")
    return portfolio
