"""Strategy catalogue for portfolio synthesis.

A *strategy* is just a named :class:`~repro.core.SynthesisOptions`
configuration.  The default portfolio covers the paper's three regimes:

* ``monolithic`` — the complete formulation (all simple routes, one SMT
  query); slowest but explores the whole solution space.
* ``routes-K`` for K in {1, 2, 3} — the route-subset heuristic
  (Sec. V-C-1); small K solves fast but may miss solvable instances.
* ``stages-S`` for S in {2, 4} — the incremental heuristic (Sec. V-C-2)
  over a modest route subset; scales with message count.

Racing them (see :mod:`repro.portfolio.engine`) gets the wall-clock time
of the *fastest* regime for each instance while keeping the coverage of
the complete one — exactly the trade-off the paper's Figs. 4-6 chart one
configuration at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.synthesizer import MODE_STABILITY, SynthesisOptions


@dataclass(frozen=True)
class Strategy:
    """One named synthesis configuration entered into the race."""

    name: str
    options: SynthesisOptions

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("strategy needs a non-empty name")


def default_portfolio(
    mode: str = MODE_STABILITY,
    route_subsets: Sequence[int] = (1, 2, 3),
    stage_counts: Sequence[int] = (2, 4),
    include_monolithic: bool = True,
    incremental_routes: Optional[int] = 3,
    path_cutoff: Optional[int] = None,
) -> List[Strategy]:
    """The paper-derived strategy mix described in the module docstring."""
    portfolio: List[Strategy] = []
    if include_monolithic:
        portfolio.append(
            Strategy(
                "monolithic",
                SynthesisOptions(mode=mode, routes=None, stages=1,
                                 path_cutoff=path_cutoff),
            )
        )
    for k in route_subsets:
        portfolio.append(
            Strategy(
                f"routes-{k}",
                SynthesisOptions(mode=mode, routes=k, stages=1,
                                 path_cutoff=path_cutoff),
            )
        )
    for s in stage_counts:
        portfolio.append(
            Strategy(
                f"stages-{s}",
                SynthesisOptions(mode=mode, routes=incremental_routes,
                                 stages=s, path_cutoff=path_cutoff),
            )
        )
    if not portfolio:
        raise ValueError("portfolio is empty: enable at least one strategy")
    return portfolio
