"""The frame-kind registry: every ``{"kind": ...}`` wire vocabulary.

Workers, the portfolio parent, the service workers and the knowledge
cache all exchange dict frames discriminated by a ``"kind"`` key.  Those
kind strings used to be scattered string literals across five modules —
exactly the drift class the ``frame-drift`` static checker
(:mod:`repro.analysis`) now gates: a frame kind constructed somewhere
that no consumer dispatches on (or consumed but never constructed) is a
protocol bug waiting for a quiet pipe.

This module is the single source of truth.  Construction sites must use
these constants (the checker flags bare literals at construction sites),
and the checker cross-references every constructed and consumed kind
against :data:`FRAME_KINDS`.

Three sub-vocabularies share the ``"kind"`` key:

* **Pipe frames** (:data:`PIPE_KINDS`) — parent <-> worker traffic on
  the multiprocessing pipes: liveness, streamed knowledge, results, and
  the service workers' request/shutdown envelope.
* **Artifact kinds** (:data:`ARTIFACT_KINDS`) — the knowledge payloads
  of :mod:`repro.portfolio.sharing` (also persisted by the service
  cache); validated at every pool boundary.
* **Event kinds** (:data:`EVENT_KINDS`) — in-process synthesis progress
  events (``core.solve(on_event=)``).
"""

from __future__ import annotations

# -- pipe frames -----------------------------------------------------------

#: Worker liveness frame (see :mod:`repro.portfolio.supervision`).
KIND_HEARTBEAT = "heartbeat"
#: A knowledge artifact streamed mid-race (payload under ``"artifact"``).
KIND_ARTIFACT = "artifact"
#: A worker's terminal answer (payload under ``"payload"``).
KIND_RESULT = "result"
#: Service parent -> worker: solve this request.
KIND_REQUEST = "request"
#: Service parent -> worker: exit the request loop cleanly.
KIND_SHUTDOWN = "shutdown"

# -- knowledge artifact kinds (see repro.portfolio.sharing) ----------------

#: Learned clauses over the shared schedule vocabulary.
ARTIFACT_CLAUSES = "clauses"
#: A proven-doomed route-subset selection.
ARTIFACT_VETO = "veto"
#: Frozen schedules of an incremental strategy's completed stages.
ARTIFACT_PREFIX = "prefix"

# -- synthesis progress events (core.solve on_event hook) ------------------

#: An incremental stage froze its schedules (payload: stage, fixed).
KIND_STAGE_FROZEN = "stage_frozen"

# -- registry --------------------------------------------------------------

PIPE_KINDS = frozenset({
    KIND_HEARTBEAT, KIND_ARTIFACT, KIND_RESULT, KIND_REQUEST, KIND_SHUTDOWN,
})
ARTIFACT_KINDS = frozenset({
    ARTIFACT_CLAUSES, ARTIFACT_VETO, ARTIFACT_PREFIX,
})
EVENT_KINDS = frozenset({
    KIND_STAGE_FROZEN,
})

#: Every frame kind any producer may construct or consumer dispatch on.
FRAME_KINDS = PIPE_KINDS | ARTIFACT_KINDS | EVENT_KINDS

# -- pipe protocol state machine -------------------------------------------
#
# What a *sender* may put on one Connection, as consumers implement it:
#
#              heartbeat/artifact                 request
#            +------------------+             +-----------+
#            v                  |             v           |
#   start --heartbeat/artifact--> streaming   start --request--> await
#     |                             |
#     +----------result------------+---result--> done
#     |
#     any non-closed state --shutdown--> closed
#
# * heartbeat/artifact frames may stream before the result, never after:
#   ``pump()``/``ServiceWorker.solve()`` stop reading on the result.
# * exactly one result: a second result frame is never consumed.
# * shutdown is terminal — the worker loop exits on it.
# * a ``recv()`` starts a fresh exchange (state back to ``start``);
#   ``close()`` is terminal like shutdown.
#
# ``repro.analysis``'s ``frame-protocol`` rule walks every send/recv
# site against this table; keep it in lockstep with the consumers.

PROTOCOL_START = "start"
PROTOCOL_STREAMING = "streaming"
PROTOCOL_DONE = "done"
PROTOCOL_AWAIT = "await"
PROTOCOL_CLOSED = "closed"

PROTOCOL_STATES = frozenset({
    PROTOCOL_START, PROTOCOL_STREAMING, PROTOCOL_DONE, PROTOCOL_AWAIT,
    PROTOCOL_CLOSED,
})

#: kind -> (states a send is legal from, state after the send).
PIPE_PROTOCOL = {
    KIND_HEARTBEAT: (frozenset({PROTOCOL_START, PROTOCOL_STREAMING}),
                     PROTOCOL_STREAMING),
    KIND_ARTIFACT: (frozenset({PROTOCOL_START, PROTOCOL_STREAMING}),
                    PROTOCOL_STREAMING),
    KIND_RESULT: (frozenset({PROTOCOL_START, PROTOCOL_STREAMING}),
                  PROTOCOL_DONE),
    KIND_REQUEST: (frozenset({PROTOCOL_START}), PROTOCOL_AWAIT),
    KIND_SHUTDOWN: (frozenset({PROTOCOL_START, PROTOCOL_STREAMING,
                               PROTOCOL_DONE, PROTOCOL_AWAIT}),
                    PROTOCOL_CLOSED),
}
