"""Deterministic fault injection for portfolio races.

The supervision machinery of :mod:`repro.portfolio.engine` (heartbeats,
crash retry with backoff, artifact quarantine, degradation to the serial
backend — see ``docs/robustness.md``) guards against workers that die
rudely: SIGKILL/OOM kills, hangs that never reach a restart boundary,
corrupt artifact frames on the sharing pipe.  None of those paths can be
reached on demand by well-behaved code, so this module makes them
*injectable*: a :class:`FaultPlan` — a seeded, deterministic set of
:class:`FaultSpec` entries — rides into each worker attempt via
``SynthesisOptions.faults`` and triggers the requested failure at a
reproducible point.

Fault kinds
-----------

``crash``
    Die without sending a result once the engine has spent
    ``at_conflicts`` conflicts (0 = at attempt start, before solving).
    Process workers die by SIGKILL — no cleanup, no EOF courtesy, the
    parent sees only ``Process.exitcode``; in-process (serial) attempts
    raise :class:`InjectedCrash`, which the serial supervisor treats the
    same way.
``hang``
    Stop making progress (and stop heartbeating) at the same trigger
    point.  Process workers sleep forever until the parent's stall
    detector kills them; the serial backend cannot be stalled from
    within, so an in-process hang degenerates to a crash.
``corrupt``
    Replace the ``frame``-th knowledge artifact this attempt emits with
    a structurally mangled copy — well-formed on the pipe, garbage at
    the pool boundary, where validation must quarantine it.
``slow_start``
    Sleep ``delay`` seconds before solving (exercises stall-detector
    grace: a slow worker must be distinguishable from a hung one by its
    eventual heartbeats).
``drop_result``
    Solve to completion, then exit cleanly *without* sending the result
    frame (a polite-looking death that still must be retried).

Triggers fire at engine restart boundaries (the PR-6 ``on_restart``
hook); a nonzero ``at_conflicts`` arms the engine's per-check conflict
budget so a boundary is guaranteed no later than the threshold.  A fault
whose trigger point is never reached (the solve finishes first) simply
does not fire — plans are conditional, which is what keeps the
"faults never change a verdict, only its cost" property testable.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: The injectable failure kinds.
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
SLOW_START = "slow_start"
DROP_RESULT = "drop_result"

_KINDS = frozenset({CRASH, HANG, CORRUPT, SLOW_START, DROP_RESULT})

#: Matches every strategy / every attempt in a :class:`FaultSpec`.
ANY = "*"


class InjectedCrash(Exception):
    """An in-process injected worker death (serial-backend crash/hang).

    Raised from inside a solve; the serial race's supervisor catches it
    at the attempt boundary and routes it through the same
    retry-with-backoff path a process worker's SIGKILL takes.  It must
    never be swallowed into an ``error`` result payload.
    """

    def __init__(self, kind: str, spec: "FaultSpec") -> None:
        super().__init__(f"injected {kind} ({spec.strategy}@{spec.attempt})")
        self.kind = kind
        self.spec = spec


@dataclass(frozen=True)
class FaultSpec:
    """One injectable failure, targeted at a strategy attempt.

    ``strategy`` names the victim (:data:`ANY` matches all);
    ``attempt`` is the 1-based launch attempt to hit (0 = every
    attempt — use sparingly: a strategy crashed on *every* attempt
    exhausts any retry budget and ends in ``error``).
    """

    kind: str
    strategy: str = ANY
    attempt: int = 1
    at_conflicts: int = 0       # crash/hang trigger threshold (0 = at start)
    delay: float = 0.0          # slow_start sleep seconds
    frame: int = 0              # corrupt: index of the artifact frame to mangle

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(have {sorted(_KINDS)})")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0 (0 = every attempt)")
        if self.at_conflicts < 0:
            raise ValueError("at_conflicts must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.frame < 0:
            raise ValueError("frame must be >= 0")

    def matches(self, strategy: str, attempt: int) -> bool:
        if self.strategy not in (ANY, strategy):
            return False
        return self.attempt in (0, attempt)


@dataclass(frozen=True)
class WorkerFaults:
    """The faults one specific worker attempt must inject (picklable).

    Built by :meth:`FaultPlan.for_attempt` at launch time and carried
    into the worker inside ``SynthesisOptions.faults``.  ``harsh``
    selects the process-grade failure mode (SIGKILL / sleep-forever);
    in-process attempts raise :class:`InjectedCrash` instead.
    """

    strategy: str
    attempt: int
    harsh: bool
    crash: Optional[FaultSpec] = None
    hang: Optional[FaultSpec] = None
    slow_start: float = 0.0
    corrupt_frames: Tuple[int, ...] = ()
    drop_result: bool = False

    def __bool__(self) -> bool:
        return bool(self.crash or self.hang or self.slow_start
                    or self.corrupt_frames or self.drop_result)


class FaultPlan:
    """A deterministic, seeded collection of faults for one race.

    Passed to ``synthesize_portfolio(fault_plan=...)``; the engine asks
    :meth:`for_attempt` for each launch and ships the per-attempt bundle
    to the worker.  The plan itself is immutable and side-effect free,
    so re-running a race with the same plan, seed, strategies and
    problem injects byte-identical failures.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected a FaultSpec, got {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_attempt(self, strategy: str, attempt: int,
                    harsh: bool) -> Optional[WorkerFaults]:
        """The fault bundle for launch ``attempt`` of ``strategy``.

        Returns None when no spec targets this attempt, so the launch
        path can skip the options rewrite entirely.
        """
        crash = hang = None
        slow = 0.0
        frames: List[int] = []
        drop = False
        for spec in self.specs:
            if not spec.matches(strategy, attempt):
                continue
            if spec.kind == CRASH and crash is None:
                crash = spec
            elif spec.kind == HANG and hang is None:
                hang = spec
            elif spec.kind == SLOW_START:
                slow += spec.delay
            elif spec.kind == CORRUPT:
                frames.append(spec.frame)
            elif spec.kind == DROP_RESULT:
                drop = True
        bundle = WorkerFaults(strategy=strategy, attempt=attempt, harsh=harsh,
                              crash=crash, hang=hang, slow_start=slow,
                              corrupt_frames=tuple(sorted(set(frames))),
                              drop_result=drop)
        return bundle if bundle else None

    @classmethod
    def chaos(cls, seed: int, strategy_names: Sequence[str],
              crashes: int = 1, hangs: int = 1, corruptions: int = 1,
              slow_starts: int = 0, drops: int = 0,
              max_conflict_trigger: int = 8,
              slow_start_delay: float = 0.05) -> "FaultPlan":
        """A seeded random plan that workers can always recover from.

        Every generated kill-type spec (crash/hang/drop) targets attempt
        1 or 2 of a pseudo-randomly chosen strategy, never both attempts
        of the same strategy with fewer than the default retry budget —
        so races under a chaos plan keep their fault-free verdict (the
        property the fault-matrix tests check) as long as strategies
        keep ``max_crash_retries >= 2``.
        """
        if not strategy_names:
            raise ValueError("chaos plan needs at least one strategy name")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        kill_attempts = {name: set() for name in strategy_names}

        def place_kill(kind: str, **kw) -> None:
            victims = [n for n in strategy_names if len(kill_attempts[n]) < 2]
            if not victims:
                return
            name = rng.choice(victims)
            attempt = rng.choice(sorted({1, 2} - kill_attempts[name]))
            kill_attempts[name].add(attempt)
            specs.append(FaultSpec(kind, strategy=name, attempt=attempt, **kw))

        for _ in range(crashes):
            place_kill(CRASH,
                       at_conflicts=rng.randrange(max_conflict_trigger + 1))
        for _ in range(hangs):
            place_kill(HANG,
                       at_conflicts=rng.randrange(max_conflict_trigger + 1))
        for _ in range(drops):
            place_kill(DROP_RESULT)
        for _ in range(corruptions):
            specs.append(FaultSpec(CORRUPT, strategy=rng.choice(
                list(strategy_names)), attempt=0, frame=rng.randrange(2)))
        for _ in range(slow_starts):
            specs.append(FaultSpec(SLOW_START, strategy=rng.choice(
                list(strategy_names)), attempt=0, delay=slow_start_delay))
        return cls(specs, seed=seed)


# ---------------------------------------------------------------------------
# Application (called by the worker / the synthesis driver)
# ---------------------------------------------------------------------------


def _die(faults: WorkerFaults, spec: FaultSpec, kind: str) -> None:
    """Execute a triggered crash/hang in the appropriate failure mode."""
    if faults.harsh:
        if kind == HANG:
            while True:             # parent's stall detector ends this
                time.sleep(3600)
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedCrash(kind, spec)  # serial: a hang IS a crash


def apply_presolve(faults: WorkerFaults) -> None:
    """Inject the faults that fire before any solving starts."""
    if faults.slow_start:
        time.sleep(faults.slow_start)
    for kind, spec in ((CRASH, faults.crash), (HANG, faults.hang)):
        if spec is not None and spec.at_conflicts == 0:
            _die(faults, spec, kind)


def install_engine_triggers(engine, faults: WorkerFaults) -> None:
    """Arm conflict-threshold crash/hang triggers on a native engine.

    The trigger piggybacks on the engine's ``on_restart`` hook (wrapping
    whatever is already installed — the fault check runs *first*, so a
    crashing worker does not get a final knowledge flush it would not
    get from a real SIGKILL).  A nonzero threshold arms the engine's
    per-check conflict budget down to it: budget exhaustion fires
    ``on_restart`` before the check returns, so the trigger point is
    reached deterministically even on solves that never restart
    naturally — and because the trigger then fires, the tightened
    budget never surfaces as a spurious ``unknown``.
    """
    armed = [(kind, spec) for kind, spec in
             ((CRASH, faults.crash), (HANG, faults.hang))
             if spec is not None and spec.at_conflicts > 0]
    if not armed:
        return
    threshold = min(spec.at_conflicts for _, spec in armed)
    if engine.max_conflicts is None or engine.max_conflicts > threshold:
        engine.max_conflicts = threshold
    inner = engine.on_restart

    def trigger(eng) -> None:
        conflicts = eng.statistics.get("conflicts", 0)
        for kind, spec in armed:
            if conflicts >= spec.at_conflicts:
                _die(faults, spec, kind)
        if inner is not None:
            inner(eng)

    engine.on_restart = trigger


def corrupt_frame(artifact: dict, frame_index: int) -> dict:
    """A structurally mangled copy of ``artifact`` (deterministic).

    The copy still pickles and still claims a plausible ``kind``, but
    its payload fails pool-boundary validation: clause literals become
    bare strings, veto limits lose their counts, prefixes their message
    tuples, and anything else gets an unknown kind — exactly the shapes
    :meth:`KnowledgePool.absorb` must quarantine rather than import.
    """
    bad = dict(artifact)
    bad["fault_injected_frame"] = frame_index
    kind = bad.get("kind")
    if kind == "clauses":
        bad["clauses"] = ("corrupt-literal-stream",)
    elif kind == "veto":
        bad["limits"] = (("corrupt-uid",),)
    elif kind == "prefix":
        bad["messages"] = "corrupt"
    else:
        # repro: allow[frame-drift] deliberately off-registry: this forged
        # kind exists to prove the pool quarantines unknown frames.
        bad["kind"] = "corrupt-frame"
    return bad


def wrap_emit(emit: Optional[Callable[[dict], None]],
              faults: Optional[WorkerFaults]):
    """Wrap an artifact-emit callback with the plan's frame corruption."""
    if emit is None or faults is None or not faults.corrupt_frames:
        return emit
    targets = set(faults.corrupt_frames)
    counter = [0]

    def corrupted(artifact: dict) -> None:
        index = counter[0]
        counter[0] += 1
        if index in targets:
            emit(corrupt_frame(artifact, index))
        else:
            emit(artifact)

    return corrupted
