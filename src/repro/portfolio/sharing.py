"""Cross-worker learned-information sharing for portfolio races.

Portfolio workers solve *related but different* formulas (each strategy
restricts routes and/or stages its own way), so naive clause exchange is
unsound.  This module defines the three artifact kinds that ARE sound to
exchange, the parent-side :class:`KnowledgePool` that aggregates them,
and the :class:`SeedKnowledge` bundle a (re)launched worker consumes via
``SynthesisOptions.seed_knowledge``.

Artifact kinds and their soundness arguments
--------------------------------------------

The key structural fact: route candidates are enumerated shortest-first
and deterministically, so a ``routes-K`` strategy's candidate list per
message is a *prefix* of any ``routes-K'`` (K' >= K) or monolithic list.
Writing ``F_K`` for the single-stage formula under route limit ``K`` and
``Restr_K`` for "every message selects within its first K candidates",
the encodings satisfy ``F_K  ==  F_K' /\\ Restr_K`` (for K <= K'): every
constraint of ``F_K`` is literally present in ``F_K'``, and the stronger
attainment disjunctions of ``F_K`` follow from ``Restr_K`` plus the
one-hot selection clauses.  Three consequences:

* **Learned clauses** (from single-stage strategies only): a clause ``C``
  learned under ``F_K`` satisfies ``F_K' |= C \\/ ~Restr_K``.  Import
  into a *more* restricted sibling (K' <= K) is verbatim; import into a
  *less* restricted single-stage sibling pads ``C`` with the relaxation
  literals ``~Restr_K`` = the beyond-K selectors of every message.
  Incremental (``stages > 1``) strategies never export clauses: their
  databases contain consequences of stage freezes and per-stage
  stability over message *subsets*, which sibling formulas do not entail.
  Exported literals are further restricted to the *schedule vocabulary*
  (route selectors and release-time atoms), whose interned names mean
  the same thing in every worker.
* **Route vetoes**: a single-stage strategy that proves ``unsat`` has
  shown ``shared constraints /\\ Restr_K`` infeasible; every sibling may
  therefore assert the blocking clause "some vetoed message selects a
  route beyond its recorded candidate count".  In siblings with no such
  route the clause loses disjuncts — down to the empty (false) clause
  for strictly more restricted siblings, which are thereby proven unsat
  without search.
* **Stage prefixes**: schedules frozen by an incremental strategy's
  completed stages.  These are replayed as *assumption probes* only
  (complete fallback to the unrestricted solve), which is sound for any
  recipient; the pool hands them to same-signature relaunches, where a
  hit lets a restarted attempt fast-forward through already-solved
  stages instead of re-searching them.

Clauses imported into an incremental recipient deserve one more note:
they are entailed properties of every *complete valid schedule*, so they
only prune stage prefixes that could never extend to a full solution —
but pruning can steer the (incomplete) heuristic to different freezes,
so a heuristic's own sat/unsat outcome may shift.  That is safe because
heuristic verdicts are never promoted to race verdicts (see
``PortfolioResult.verdict_by``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..smt.terms import Atom, BoolExpr, BoolVar, Or
from .frames import (ARTIFACT_CLAUSES, ARTIFACT_KINDS, ARTIFACT_PREFIX,
                     ARTIFACT_VETO)

#: Export caps: clause literal count, learning-time LBD, clauses per
#: exporting strategy.  Small on purpose — shared clauses are hints, and
#: every import is replayed by each seeded worker.
MAX_CLAUSE_SIZE = 8
MAX_CLAUSE_LBD = 8
MAX_CLAUSES_PER_SOURCE = 256

_INF = float("inf")


def _limit(routes: Optional[int]) -> float:
    """Route limit as a comparable number (None = unrestricted)."""
    return _INF if routes is None else routes


@dataclass(frozen=True)
class StrategySignature:
    """The encoding-relevant fingerprint of a strategy's options."""

    mode: str
    routes: Optional[int]
    stages: int
    path_cutoff: Optional[int]
    repair: bool

    def compatible(self, other: "StrategySignature") -> bool:
        """Same constraint semantics and route enumeration?"""
        return self.mode == other.mode and self.path_cutoff == other.path_cutoff


def signature_of(options) -> StrategySignature:
    """Signature of a :class:`~repro.core.SynthesisOptions`."""
    return StrategySignature(
        mode=options.mode,
        routes=options.routes,
        stages=options.stages,
        path_cutoff=options.path_cutoff,
        repair=options.repair,
    )


def schedule_vocabulary(expr: BoolExpr) -> bool:
    """Is ``expr`` part of the cross-strategy stable vocabulary?

    Route selectors (``<ns>/R[uid][r]`` Booleans) and atoms over release
    times (``<ns>/g[uid][node]`` reals) name the same decision in every
    strategy's encoding; everything else (stage-tagged stability bounds,
    freeze guards, scope selectors) is strategy- or solver-local.
    """
    if isinstance(expr, BoolVar):
        return "/R[" in expr.name and "!" not in expr.name
    if isinstance(expr, Atom):
        return all("/g[" in v.name for v, _ in expr.coeffs)
    return False


# ---------------------------------------------------------------------------
# Seed bundle (travels into workers inside SynthesisOptions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClauseBatch:
    """Learned clauses from one exporting strategy."""

    source_routes: Optional[int]            # exporter's route limit
    clauses: Tuple[Tuple, ...]              # tuples of serialized literals


@dataclass(frozen=True)
class RouteVeto:
    """A proven-doomed route-subset selection.

    ``limits`` maps message uid -> number of candidate routes the proving
    strategy allowed it; the conjunction "each listed message within its
    first ``n`` candidates" is infeasible together with the shared
    constraints.
    """

    limits: Tuple[Tuple[str, int], ...]
    source: str                             # proving strategy, for reports


@dataclass(frozen=True)
class StagePrefix:
    """Frozen schedules of an incremental strategy's completed stages.

    ``messages`` entries are ``(uid, route nodes, ((switch, gamma), ...))``
    with exact rationals rendered as strings.
    """

    signature: StrategySignature
    stages_completed: int
    messages: Tuple[Tuple[str, Tuple[str, ...], Tuple[Tuple[str, str], ...]], ...]


@dataclass(frozen=True)
class SeedKnowledge:
    """Everything the pool hands a newly launched attempt."""

    clause_batches: Tuple[ClauseBatch, ...] = ()
    route_vetoes: Tuple[RouteVeto, ...] = ()
    stage_prefix: Optional[StagePrefix] = None

    def __bool__(self) -> bool:
        return bool(self.clause_batches or self.route_vetoes
                    or self.stage_prefix)


# ---------------------------------------------------------------------------
# Worker-side export
# ---------------------------------------------------------------------------


def prefix_artifact(options, stage_idx: int, fixed: Sequence) -> dict:
    """Serialize the cumulative frozen prefix after ``stage_idx``."""
    messages = tuple(
        (
            fm.uid,
            tuple(fm.route),
            tuple(sorted((node, str(value)) for node, value in fm.gammas.items())),
        )
        for fm in fixed
    )
    return {
        "kind": ARTIFACT_PREFIX,
        "signature": signature_of(options),
        "stages_completed": stage_idx + 1,
        "messages": messages,
    }


def _exportable_clauses(engine) -> Tuple[Tuple, ...]:
    """Units first (the strongest facts), then ranked learned clauses.

    Both exports are entailed by the asserted formulas alone: learned
    clauses by CDCL invariant (assumptions enter analysis as ordinary
    literals, never as facts), level-0 trail literals because they are
    propagated before any assumption decision.  So this is safe to call
    mid-check, not just after a verdict.
    """
    units: List[Tuple] = []
    if hasattr(engine, "export_unit_clauses"):
        units = list(engine.export_unit_clauses(
            max_count=MAX_CLAUSES_PER_SOURCE,
            vocabulary=schedule_vocabulary,
        ))
    learned = engine.export_learned_clauses(
        max_size=MAX_CLAUSE_SIZE,
        max_lbd=MAX_CLAUSE_LBD,
        max_count=MAX_CLAUSES_PER_SOURCE,
        vocabulary=schedule_vocabulary,
    )
    return tuple(units + list(learned))[:MAX_CLAUSES_PER_SOURCE]


def terminal_artifacts(options, result, engine) -> List[dict]:
    """Artifacts a worker ships after its solve returns.

    Only single-stage strategies export here (see the module docstring
    for why incremental clause databases stay private), and only on
    ``unsat`` — a sat result ends the race, and timeouts never return.
    """
    artifacts: List[dict] = []
    if options.stages != 1 or result.status != "unsat":
        return artifacts
    sig = signature_of(options)
    if result.route_veto:
        artifacts.append({
            "kind": ARTIFACT_VETO,
            "signature": sig,
            "limits": tuple(result.route_veto),
        })
    if engine is not None and hasattr(engine, "export_learned_clauses"):
        clauses = _exportable_clauses(engine)
        if clauses:
            artifacts.append({
                "kind": ARTIFACT_CLAUSES,
                "signature": sig,
                "clauses": clauses,
            })
    return artifacts


def restart_artifacts(options, engine) -> List[dict]:
    """Artifacts flushed from *inside* a check, at a restart boundary.

    This is how a worker that never returns from ``check()`` — killed by
    a race verdict, a timeout, or a ``max_conflicts`` budget — still
    contributes: the engine's ``on_restart`` hook calls this with the
    trail backjumped to the assumption level and streams the result to
    the parent pool.  The same single-stage-only rule as
    :func:`terminal_artifacts` applies (an incremental worker's database
    mixes in freeze consequences); the verdict restriction does not —
    learned clauses and level-0 units are sound regardless of how (or
    whether) the check ends.  Artifacts are tagged ``origin: mid-check``
    so the pool can account for them separately.
    """
    if options.stages != 1 or engine is None:
        return []
    if not hasattr(engine, "export_learned_clauses"):
        return []
    clauses = _exportable_clauses(engine)
    if not clauses:
        return []
    return [{
        "kind": ARTIFACT_CLAUSES,
        "signature": signature_of(options),
        "clauses": clauses,
        "origin": "mid-check",
    }]


# ---------------------------------------------------------------------------
# Pool-boundary validation (artifact quarantine)
# ---------------------------------------------------------------------------


def _valid_literal(lit) -> bool:
    if not isinstance(lit, tuple) or not lit:
        return False
    if lit[0] == "b":
        return len(lit) == 3 and isinstance(lit[1], str)
    if lit[0] == "a":
        return (len(lit) == 5
                and isinstance(lit[1], tuple)
                and all(isinstance(pair, tuple) and len(pair) == 2
                        and isinstance(pair[0], str) and isinstance(pair[1], str)
                        for pair in lit[1])
                and isinstance(lit[2], str))
    return False


def validate_artifact(artifact) -> Optional[str]:
    """Why ``artifact`` must be quarantined, or None when it is sound.

    This is the pool-boundary gate: artifacts arrive over a pipe from
    workers that may be fault-injected, dying mid-``send``, or running
    a different code revision, so *everything* a seeded worker would
    later deserialize is shape-checked here.  A rejected frame is
    counted and dropped — it never reaches the race.
    """
    if not isinstance(artifact, dict):
        return f"not a dict: {type(artifact).__name__}"
    kind = artifact.get("kind")
    if kind not in ARTIFACT_KINDS:
        return f"unknown artifact kind {kind!r}"
    if not isinstance(artifact.get("signature"), StrategySignature):
        return "missing/invalid strategy signature"
    if kind == ARTIFACT_CLAUSES:
        clauses = artifact.get("clauses")
        if not isinstance(clauses, tuple):
            return "clauses payload is not a tuple"
        for clause in clauses:
            if not isinstance(clause, tuple) or not clause:
                return f"malformed clause {clause!r:.60}"
            if not all(_valid_literal(lit) for lit in clause):
                return f"malformed literal in clause {clause!r:.60}"
    elif kind == ARTIFACT_VETO:
        limits = artifact.get("limits")
        if not isinstance(limits, tuple) or not limits:
            return "veto without limits"
        for entry in limits:
            if (not isinstance(entry, tuple) or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], int) or entry[1] < 0):
                return f"malformed veto limit {entry!r:.60}"
    elif kind == ARTIFACT_PREFIX:
        if not isinstance(artifact.get("stages_completed"), int):
            return "prefix without a stage count"
        messages = artifact.get("messages")
        if not isinstance(messages, tuple):
            return "prefix messages payload is not a tuple"
        for msg in messages:
            if (not isinstance(msg, tuple) or len(msg) != 3
                    or not isinstance(msg[0], str)
                    or not isinstance(msg[1], tuple)
                    or not all(isinstance(node, str) for node in msg[1])
                    or not isinstance(msg[2], tuple)
                    or not all(isinstance(g, tuple) and len(g) == 2
                               and isinstance(g[0], str)
                               and isinstance(g[1], str)
                               for g in msg[2])):
                return f"malformed prefix message {msg!r:.60}"
    return None


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


class KnowledgePool:
    """Aggregates worker artifacts; seeds restarts and late launches."""

    def __init__(self, max_clauses_per_signature: int = MAX_CLAUSES_PER_SOURCE):
        # Clauses are pooled (and capped) per exporting strategy
        # *signature*: strategies with identical options — including a
        # strategy's own restart attempts — share one dedup bucket.
        self.max_clauses_per_signature = max_clauses_per_signature
        # signature -> insertion-ordered clause dedup set.
        self._clauses: Dict[StrategySignature, Dict[Tuple, None]] = {}
        self._vetoes: Dict[Tuple, RouteVeto] = {}
        self._veto_sigs: Dict[Tuple, StrategySignature] = {}
        self._prefixes: Dict[StrategySignature, StagePrefix] = {}
        self.counters: Dict[str, int] = {
            "clauses_pooled": 0,
            "midcheck_clauses_pooled": 0,
            "vetoes_pooled": 0,
            "prefixes_pooled": 0,
            "seeds_served": 0,
            "quarantined_artifacts": 0,
        }

    def absorb(self, artifact: Optional[dict], source: str = "") -> bool:
        """Fold one worker artifact into the pool.

        Every frame passes :func:`validate_artifact` first; a malformed
        or fault-injected frame is *quarantined* — counted in
        ``quarantined_artifacts`` and dropped, never raised into the
        race and never imported by a seeded worker.  Returns whether the
        artifact was accepted.
        """
        if validate_artifact(artifact) is not None:
            self.counters["quarantined_artifacts"] += 1
            return False
        kind = artifact.get("kind")
        sig = artifact.get("signature")
        if kind == ARTIFACT_CLAUSES:
            bucket = self._clauses.setdefault(sig, {})
            fresh = 0
            for clause in artifact.get("clauses", ()):
                if clause not in bucket and (
                    len(bucket) < self.max_clauses_per_signature
                ):
                    bucket[clause] = None
                    fresh += 1
            self.counters["clauses_pooled"] += fresh
            if fresh and artifact.get("origin") == "mid-check":
                self.counters["midcheck_clauses_pooled"] += fresh
        elif kind == ARTIFACT_VETO:
            limits = tuple(artifact.get("limits", ()))
            if limits and limits not in self._vetoes:
                self._vetoes[limits] = RouteVeto(limits=limits, source=source)
                self._veto_sigs[limits] = sig
                self.counters["vetoes_pooled"] += 1
        elif kind == ARTIFACT_PREFIX:
            best = self._prefixes.get(sig)
            stages = artifact.get("stages_completed", 0)
            if best is None or stages > best.stages_completed:
                self._prefixes[sig] = StagePrefix(
                    signature=sig,
                    stages_completed=stages,
                    messages=tuple(artifact.get("messages", ())),
                )
                self.counters["prefixes_pooled"] += 1
        return True

    def seed_for(self, options) -> Optional[SeedKnowledge]:
        """The knowledge bundle for an attempt about to run ``options``."""
        target = signature_of(options)
        batches = tuple(
            ClauseBatch(source_routes=sig.routes, clauses=tuple(bucket))
            for sig, bucket in self._clauses.items()
            if bucket and sig.compatible(target)
        )
        vetoes = tuple(
            veto for limits, veto in self._vetoes.items()
            if self._veto_sigs[limits].compatible(target)
        )
        prefix = self._prefixes.get(target)
        seed = SeedKnowledge(clause_batches=batches, route_vetoes=vetoes,
                             stage_prefix=prefix)
        if not seed:
            return None
        self.counters["seeds_served"] += 1
        return seed

    def seeded_options(self, options):
        """``options`` with this pool's current seed attached (or as-is)."""
        seed = self.seed_for(options)
        if seed is None:
            return options
        return replace(options, seed_knowledge=seed)

    @property
    def statistics(self) -> Dict[str, int]:
        return dict(self.counters)


# ---------------------------------------------------------------------------
# Consumer-side application (called from core.solve)
# ---------------------------------------------------------------------------


def import_presolve_clauses(session, options) -> int:
    """Install clause batches that need no padding (before any encoding).

    Verbatim import is sound exactly when this strategy is at most as
    route-permissive as the exporter (``target K <= source K``); see the
    module docstring.  Backends without a native engine skip the import.
    """
    seed = options.seed_knowledge
    engine = getattr(session.backend, "engine", None)
    if seed is None or engine is None or not hasattr(engine, "import_clauses"):
        return 0
    imported = 0
    for batch in seed.clause_batches:
        if _limit(options.routes) <= _limit(batch.source_routes):
            imported += engine.import_clauses(batch.clauses)
    return imported


def import_padded_clauses(session, encoder, options) -> int:
    """Install batches from *stricter* exporters, padded for soundness.

    Requires the full message set to be encoded (single-stage recipients
    only — the caller guards), because the relaxation pad ranges over
    every message's beyond-``source_routes`` selectors.
    """
    seed = options.seed_knowledge
    engine = getattr(session.backend, "engine", None)
    if seed is None or engine is None or not hasattr(engine, "import_clauses"):
        return 0
    imported = 0
    for batch in seed.clause_batches:
        src = _limit(batch.source_routes)
        if _limit(options.routes) <= src:
            continue  # already imported verbatim by import_presolve_clauses
        pad = [
            sel
            for plan in encoder.plans.values()
            for sel in plan.selectors[int(src):]
        ]
        imported += engine.import_clauses(batch.clauses, pad=pad)
    return imported


def apply_route_vetoes(session, encoder, options, applied: Set[Tuple]) -> int:
    """Assert every veto whose messages are all encoded already.

    The veto clause "some listed message beyond its recorded candidate
    count" may only be asserted once all its disjunct sources exist;
    ``applied`` tracks vetoes asserted in earlier stages.  An empty
    clause (no listed message has extra routes here) is the entailed
    *false* — this strategy is doomed and the solver reports unsat
    without search.
    """
    seed = options.seed_knowledge
    if seed is None:
        return 0
    count = 0
    for veto in seed.route_vetoes:
        if veto.limits in applied:
            continue
        if not all(uid in encoder.plans for uid, _ in veto.limits):
            continue
        escape = [
            sel
            for uid, n in veto.limits
            for sel in encoder.plans[uid].selectors[n:]
        ]
        session.add(Or(escape))
        applied.add(veto.limits)
        count += 1
    return count


def prefix_assumptions(options, new_plans) -> List[BoolExpr]:
    """Assumption literals replaying a shared prefix onto this stage.

    For each stage message recorded in the prefix: the selector of the
    recorded route (located by node-list equality, so differing route
    limits cannot misindex) and the recorded release-time equalities.
    Unknown uids or vanished routes are skipped — the probe is a hint.
    """
    seed = options.seed_knowledge
    if seed is None or seed.stage_prefix is None:
        return []
    recorded = {uid: (route, gammas)
                for uid, route, gammas in seed.stage_prefix.messages}
    assumptions: List[BoolExpr] = []
    for plan in new_plans:
        entry = recorded.get(plan.message.uid)
        if entry is None:
            continue
        route, gammas = entry
        try:
            ridx = plan.routes.index(list(route))
        except ValueError:
            continue
        assumptions.append(plan.selectors[ridx])
        for node, value in gammas:
            gamma = plan.gammas.get(node)
            if gamma is not None:
                assumptions.append(gamma == Fraction(value))
    return assumptions
