"""Incremental difference-logic engine (Cotton–Maler style).

Handles conjunctions of constraints ``x - y <= c`` / ``x - y < c`` (and
single-variable bounds via a distinguished zero node).  This is the
workhorse theory for the scheduling atoms of the paper's encoding:
transposition (Eq. 6) and contention-free (Eq. 5) constraints are all
difference atoms, so conflicts among them are detected *eagerly* during the
SAT search with near-linear incremental cost.

The engine maintains a feasible potential function ``pi`` over the
constraint graph (edge ``u -> v`` with weight ``w`` encodes
``val(v) - val(u) <= w``).  Adding an edge triggers a Dijkstra-like
restoration of the potential; failure to restore yields a negative cycle
whose edge literals form the conflict explanation.

Transitive propagation
----------------------

Beyond feasibility, the engine performs Cotton & Maler's SSSP-based
*theory propagation*: callers register node pairs of interest
(:meth:`watch_pair`), and after each batch of successful assertions
:meth:`implied_bounds` derives, for every watched pair ``(s, t)``, the
tightest bound on ``val(t) - val(s)`` provable through a path that uses
one of the freshly asserted edges.  The feasible potential makes every
reduced edge cost non-negative, so both directions of the pass are plain
Dijkstra runs (bounded by an effort cap — see :meth:`implied_bounds`),
and a derived bound ships with the asserted literals of its path as a
ready-made multi-literal explanation.

Number representation
---------------------

This module is the solver's single hottest loop (millions of potential
relaxations per synthesis run), and profiling showed >60% of its time
inside ``Fraction``'s operator dispatch.  All quantities are therefore
stored as *scaled integer pairs*: a delta-rational ``a + b*delta`` becomes
``(a*S, b*S)`` for one engine-wide positive integer scale ``S``.  Sums and
comparisons are then plain (lexicographic) machine-integer operations with
no allocation.  ``S`` grows lazily (by an LCM step that rescales all stored
state) whenever an asserted bound needs a finer denominator; on the paper's
workloads the denominators come from a small fixed set of timing constants,
so rescaling happens a handful of times per run and the arithmetic is
exact — this is a change of units, not an approximation.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from fractions import Fraction

from .rationals import DeltaRational

#: Default cap on heap pops per SSSP direction (see ``implied_bounds``):
#: bounds the incremental propagation pass so dense graphs or easy
#: instances never pay more than a constant amount of work per asserted
#: edge.  Aborting a pass early is sound — propagation is an optimization
#: and every settled label is already a valid derived bound.  The default
#: covers difference chains of ~10 hops per side, which profiling on the
#: scheduling workloads showed captures nearly all useful implications at
#: a fraction of an unbounded pass's cost.
DEFAULT_EFFORT_CAP = 48


class _Edge:
    """Tightest active constraint for one ordered node pair (scaled ints)."""

    __slots__ = ("wr", "wd", "lit")

    def __init__(self, wr: int, wd: int, lit: int):
        self.wr = wr
        self.wd = wd
        self.lit = lit


class DifferenceLogic:
    """Incremental feasibility of difference constraints with explanations.

    Nodes are dense integer ids allocated by :meth:`new_node`.  Node 0 is
    conventionally the "zero" reference node (created eagerly) so callers
    can express single-variable bounds as differences against it.
    """

    def __init__(self, propagation: bool = True,
                 effort_cap: int = DEFAULT_EFFORT_CAP) -> None:
        #: Engine-wide denominator: stored value (r, d) means (r + d*delta)/S.
        self._scale = 1
        self._pi_r: List[int] = [0]
        self._pi_d: List[int] = [0]
        # adjacency: u -> {v: _Edge} keeping only the tightest active edge.
        self._out: List[Dict[int, _Edge]] = [{}]
        self._in: List[Dict[int, _Edge]] = [{}]
        # Undo trail: ("new", u, v) or ("upd", u, v, old_edge)
        self._trail: List[Tuple] = []
        # Transitive propagation state: watched path pairs (src -> [dst..]),
        # per-pair relevance thresholds (the loosest registered bound, in
        # engine scale: candidates above it can never entail an atom and
        # are pruned before any allocation), and the edges tightened since
        # the last implied_bounds() drain.
        self._propagation = propagation
        self._effort_cap = effort_cap
        self._watch_src: Dict[int, List[int]] = {}
        self._watch_bound: Dict[Tuple[int, int], DeltaRational] = {}
        self._thresh: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # Per-source loosest threshold: lets a pass skip a whole source
        # with one comparison when even its best conceivable path is
        # irrelevant.
        self._src_max: Dict[int, Tuple[int, int]] = {}
        self._fresh: List[Tuple[int, int, _Edge]] = []
        # Set by _restore_potential: whether the last accepted edge moved
        # the potential.  A slack edge (reduced cost >= 0 on arrival)
        # left every shortest-path estimate intact, so the propagation
        # pass for it is skipped — see assert_constraint.
        self._pi_moved = False

    @property
    def zero_node(self) -> int:
        return 0

    def new_node(self) -> int:
        self._pi_r.append(0)
        self._pi_d.append(0)
        self._out.append({})
        self._in.append({})
        return len(self._pi_r) - 1

    @property
    def num_nodes(self) -> int:
        return len(self._pi_r)

    def mark(self) -> int:
        """Current undo-trail position (for backtracking)."""
        return len(self._trail)

    def watch_pair(self, src: int, dst: int, bound: DeltaRational) -> None:
        """Derive transitive bounds on ``val(dst) - val(src)`` (paths
        ``src -> ... -> dst``) in :meth:`implied_bounds`.

        ``bound`` is the loosest derived bound the caller can still use
        (e.g. the largest registered atom bound on this pair): stricter
        derivations are reported, anything weaker is pruned inside the
        pass.
        """
        key = (src, dst)
        # Fold the bound's denominators into the engine scale even when
        # the pair's threshold does not change: every bound ever passed
        # here must stay exactly representable, so that later
        # scaled_bound() conversions (the theory's scaled watch mirror)
        # can never trigger a rescale mid-rebuild and compare
        # mixed-scale quantities.
        scaled = self._scaled(bound)
        prev = self._watch_bound.get(key)
        if prev is None:
            self._watch_src.setdefault(src, []).append(dst)
        elif bound <= prev:
            return
        self._watch_bound[key] = bound
        self._thresh[key] = scaled
        cur = self._src_max.get(src)
        if cur is None or scaled[0] > cur[0] or (
            scaled[0] == cur[0] and scaled[1] > cur[1]
        ):
            self._src_max[src] = scaled

    @property
    def scale(self) -> int:
        """The engine-wide integer scale (changes only on rescaling)."""
        return self._scale

    def scaled_bound(self, bound: DeltaRational) -> Tuple[int, int]:
        """``bound`` in the engine's current integer scale.

        Consumers caching scaled comparisons (see
        :meth:`repro.smt.theory.LraTheory.propagate`) key their cache by
        :attr:`scale` and convert through this.
        """
        return self._scaled(bound)

    def undo_to(self, mark: int) -> None:
        """Remove all edges asserted after ``mark``."""
        if len(self._trail) > mark and self._fresh:
            # Undrained propagation candidates may cite edges being undone;
            # drop them all (propagations lost to backtracking re-arise
            # through search, same policy as the simplex bound watches).
            self._fresh.clear()
        while len(self._trail) > mark:
            entry = self._trail.pop()
            if entry[0] == "new":
                _, u, v = entry
                del self._out[u][v]
                del self._in[v][u]
            else:
                _, u, v, old = entry
                self._out[u][v] = old
                self._in[v][u] = old

    # ------------------------------------------------------------------
    # Scaled-integer bookkeeping
    # ------------------------------------------------------------------

    def _rescale(self, factor: int) -> None:
        """Multiply the engine scale (and every stored value) by ``factor``."""
        self._scale *= factor
        self._pi_r = [r * factor for r in self._pi_r]
        self._pi_d = [d * factor for d in self._pi_d]
        seen = set()
        for targets in self._out:
            for edge in targets.values():
                if id(edge) not in seen:
                    seen.add(id(edge))
                    edge.wr *= factor
                    edge.wd *= factor
        # Superseded edges parked on the trail must stay in sync too: an
        # undo_to() may reinstall them after the rescale.
        for entry in self._trail:
            if entry[0] == "upd":
                edge = entry[3]
                if id(edge) not in seen:
                    seen.add(id(edge))
                    edge.wr *= factor
                    edge.wd *= factor
        # Propagation thresholds are stored in engine scale as well.
        if self._thresh:
            self._thresh = {
                key: (tr * factor, td * factor)
                for key, (tr, td) in self._thresh.items()
            }
            self._src_max = {
                src: (tr * factor, td * factor)
                for src, (tr, td) in self._src_max.items()
            }

    def _scaled(self, bound: DeltaRational) -> Tuple[int, int]:
        """Convert a delta-rational to the engine's integer scale."""
        real, delta = bound.real, bound.delta
        scale = self._scale
        rden, dden = real.denominator, delta.denominator
        if scale % rden or scale % dden:
            need = rden * dden // math.gcd(rden, dden)
            self._rescale(need // math.gcd(need, scale))
            scale = self._scale
        return (real.numerator * (scale // rden),
                delta.numerator * (scale // dden))

    def assert_constraint(
        self, x: int, y: int, bound: DeltaRational, lit: int
    ) -> Optional[List[int]]:
        """Assert ``val(x) - val(y) <= bound`` (edge ``y -> x``).

        Returns None if still feasible, otherwise the list of literals of a
        negative cycle (including ``lit``), and leaves the engine state
        unchanged apart from the recorded trail entry (callers are expected
        to backtrack via :meth:`undo_to`).

        A transitive-propagation pass is scheduled only when the edge
        *moved the potential*: a slack edge left every shortest-path
        estimate intact, and profiling shows ~90% of asserted
        scheduling atoms are slack — skipping them keeps propagation
        cheaper than the search it saves.
        """
        u, v = y, x
        wr, wd = self._scaled(bound)
        existing = self._out[u].get(v)
        if existing is not None and (
            existing.wr < wr or (existing.wr == wr and existing.wd <= wd)
        ):
            # Weaker than (or equal to) an active constraint: the graph is
            # unchanged, but we still record an ("upd", u, v, existing)
            # trail entry whose undo reinstalls the same edge over itself —
            # a harmless no-op that keeps one entry per assert, so callers'
            # marks stay aligned with their own assertion counts.  (The
            # parked edge is the *active* object, which _rescale already
            # scales through the adjacency scan — no double scaling.)
            self._trail.append(("upd", u, v, existing))
            return None
        edge = _Edge(wr, wd, lit)
        if existing is None:
            self._trail.append(("new", u, v))
        else:
            self._trail.append(("upd", u, v, existing))
        self._out[u][v] = edge
        self._in[v][u] = edge
        conflict = self._restore_potential(u, v, edge)
        if (conflict is None and self._pi_moved
                and self._propagation and self._watch_src):
            self._fresh.append((u, v, edge))
        return conflict

    # ------------------------------------------------------------------
    # Potential restoration (Cotton & Maler, 2006)
    # ------------------------------------------------------------------

    def _restore_potential(self, u: int, v: int, edge: _Edge) -> Optional[List[int]]:
        pi_r, pi_d = self._pi_r, self._pi_d
        sr = pi_r[u] + edge.wr - pi_r[v]
        sd = pi_d[u] + edge.wd - pi_d[v]
        if sr > 0 or (sr == 0 and sd >= 0):
            self._pi_moved = False
            return None
        self._pi_moved = True
        gamma: Dict[int, Tuple[int, int]] = {v: (sr, sd)}
        parent: Dict[int, int] = {v: u}
        new_pi: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[int, int, int]] = [(sr, sd, v)]
        out = self._out
        while heap:
            gr, gd, x = heappop(heap)
            if x in new_pi or gamma.get(x) != (gr, gd):
                continue  # stale entry
            if gr > 0 or (gr == 0 and gd >= 0):
                break
            if x == u:
                # Relaxation wrapped around to the source of the new edge:
                # negative cycle through the new edge.
                return self._cycle_explanation(u, v, parent, edge)
            nr = pi_r[x] + gr
            nd = pi_d[x] + gd
            new_pi[x] = (nr, nd)
            for y, e in out[x].items():
                if y in new_pi:
                    continue
                cr = nr + e.wr - pi_r[y]
                cd = nd + e.wd - pi_d[y]
                if cr < 0 or (cr == 0 and cd < 0):
                    old = gamma.get(y)
                    if old is None or cr < old[0] or (cr == old[0] and cd < old[1]):
                        gamma[y] = (cr, cd)
                        parent[y] = x
                        heappush(heap, (cr, cd, y))
        for x, (nr, nd) in new_pi.items():
            pi_r[x] = nr
            pi_d[x] = nd
        return None

    def _cycle_explanation(
        self, u: int, v: int, parent: Dict[int, int], new_edge: _Edge
    ) -> List[int]:
        """Collect the literals along the cycle u -> v -> ... -> u."""
        lits = [new_edge.lit]
        node = u
        # Walk parent pointers from u back to v.
        while node != v:
            prev = parent[node]
            lits.append(self._out[prev][node].lit)
            node = prev
        # Deduplicate while preserving order (a literal may label two edges).
        seen = set()
        out = []
        for l in lits:
            if l not in seen and l >= 0:
                seen.add(l)
                out.append(l)
        return out

    # ------------------------------------------------------------------
    # Transitive propagation (Cotton & Maler, 2006: SSSP on reduced costs)
    # ------------------------------------------------------------------

    def implied_bounds(self) -> List["ImpliedBound"]:
        """Transitive bounds for watched pairs through freshly added edges.

        For every edge tightened since the last drain, runs one bounded
        Dijkstra *backward* from the edge's tail and one *forward* from
        its head, over the reduced costs ``pi(a) + w - pi(b) >= 0`` of
        the feasible potential.  Any watched pair ``(s, t)`` reached on
        both sides yields a path ``s ~> u -> v ~> t`` whose total weight
        ``W`` proves ``val(t) - val(s) <= W``; the tightest such bound
        per pair is returned as an :class:`ImpliedBound` — candidates
        weaker than the pair's registered relevance threshold are pruned
        inside the pass, and the path-literal explanation is materialized
        lazily (:meth:`ImpliedBound.path_lits`), so pairs whose atoms are
        all assigned cost nothing beyond the distance labels.

        Coverage is deliberately best-effort: a pass is scheduled only
        for edges that *moved the potential* (see
        :meth:`assert_constraint`), and each Dijkstra direction stops
        after ``effort_cap`` pops — so an implication whose path is
        completed by a slack edge, or lies beyond the cap, may be
        missed (the atom is simply decided later; propagation is an
        optimization).  Partial passes are sound because any settled
        label is a genuine path weight.  Drains the fresh-edge list.
        """
        if not self._fresh:
            return []
        best: Dict[Tuple[int, int], ImpliedBound] = {}
        for u, v, edge in self._fresh:
            self._sssp_pass(u, v, edge, best)
        self._fresh.clear()
        return list(best.values())

    def _sssp_pass(
        self,
        u: int,
        v: int,
        edge: _Edge,
        best: Dict[Tuple[int, int], "ImpliedBound"],
    ) -> None:
        """Derive watched-pair bounds through the edge ``u -> v``."""
        pi_r, pi_d = self._pi_r, self._pi_d
        rc_r = pi_r[u] + edge.wr - pi_r[v]
        rc_d = pi_d[u] + edge.wd - pi_d[v]
        back, back_par = self._bounded_sssp(u, self._in, backward=True)
        watch_src = self._watch_src
        src_max = self._src_max
        sources = [s for s in back if s in watch_src]
        if not sources:
            return
        fwd, fwd_par = self._bounded_sssp(v, self._out, backward=False)
        # The best conceivable forward completion (min over settled t of
        # reduced dist + pi(t)) lets one comparison rule a source out.
        min_f_r = min_f_d = None
        for t, (fr, fd) in fwd.items():
            cr = fr + pi_r[t]
            cd = fd + pi_d[t]
            if min_f_r is None or cr < min_f_r or (cr == min_f_r and cd < min_f_d):
                min_f_r, min_f_d = cr, cd
        thresh = self._thresh
        out_adj = self._out
        for s in sources:
            br, bd = back[s]
            base_r = br + rc_r - pi_r[s]
            base_d = bd + rc_d - pi_d[s]
            mr, md = src_max[s]
            lo_r = base_r + min_f_r
            if lo_r > mr or (lo_r == mr and base_d + min_f_d > md):
                continue  # even the best completion is irrelevant here
            out_s = out_adj[s]
            dsts = watch_src[s]
            if len(dsts) > len(fwd):
                # Enumerate the smaller side: iterate settled forward
                # nodes and probe the pair-threshold index instead.
                for t, f in fwd.items():
                    th = thresh.get((s, t))
                    if th is None:
                        continue
                    wr = base_r + f[0] + pi_r[t]
                    wd = base_d + f[1] + pi_d[t]
                    if wr > th[0] or (wr == th[0] and wd > th[1]):
                        continue
                    self._consider(best, s, t, wr, wd, out_s,
                                   u, v, edge, back_par, fwd_par)
                continue
            for t in dsts:
                f = fwd.get(t)
                if f is None:
                    continue
                # Un-reduce: reduced length of s ~> t telescopes to
                # true length + pi(s) - pi(t).
                wr = base_r + f[0] + pi_r[t]
                wd = base_d + f[1] + pi_d[t]
                tr, td = thresh[(s, t)]
                if wr > tr or (wr == tr and wd > td):
                    continue  # cannot entail any registered atom
                self._consider(best, s, t, wr, wd, out_s,
                               u, v, edge, back_par, fwd_par)

    def _consider(self, best, s, t, wr, wd, out_s, u, v, edge,
                  back_par, fwd_par) -> None:
        """Record a threshold-passing candidate unless dominated.

        A candidate at least as weak as an *active direct constraint* on
        the same pair is dropped: that constraint's implications already
        flowed through the canonical-slack bound channel when it was
        asserted.
        """
        direct = out_s.get(t)
        if direct is not None and (
            direct.wr < wr or (direct.wr == wr and direct.wd <= wd)
        ):
            return
        cur = best.get((s, t))
        if cur is None or wr < cur.wr or (wr == cur.wr and wd < cur.wd):
            best[(s, t)] = ImpliedBound(
                self, s, t, wr, wd, u, v, edge, back_par, fwd_par
            )

    def _bounded_sssp(
        self, start: int, adj: List[Dict[int, _Edge]], backward: bool
    ) -> Tuple[Dict[int, Tuple[int, int]], Dict[int, Tuple[int, int]]]:
        """Dijkstra over reduced costs from ``start``, capped at
        ``effort_cap`` pops.

        Returns ``(settled, parent)``: exact reduced distances for the
        settled nodes, and for each settled node (except ``start``) the
        ``(neighbour-toward-start, edge literal)`` it was reached from.
        ``backward=True`` walks ``self._in`` (distances are then path
        lengths *toward* ``start`` in the forward edge direction).
        """
        pi_r, pi_d = self._pi_r, self._pi_d
        dist: Dict[int, Tuple[int, int]] = {start: (0, 0)}
        parent: Dict[int, Tuple[int, int]] = {}
        settled: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[int, int, int]] = [(0, 0, start)]
        budget = self._effort_cap
        while heap and budget > 0:
            dr, dd, x = heappop(heap)
            if x in settled or dist.get(x) != (dr, dd):
                continue  # stale entry
            settled[x] = (dr, dd)
            budget -= 1
            for y, e in adj[x].items():
                if y in settled:
                    continue
                if backward:
                    # e is the edge y -> x; cost of prepending it.
                    er = pi_r[y] + e.wr - pi_r[x]
                    ed = pi_d[y] + e.wd - pi_d[x]
                else:
                    # e is the edge x -> y; cost of appending it.
                    er = pi_r[x] + e.wr - pi_r[y]
                    ed = pi_d[x] + e.wd - pi_d[y]
                nr, nd = dr + er, dd + ed
                cur = dist.get(y)
                if cur is None or nr < cur[0] or (nr == cur[0] and nd < cur[1]):
                    dist[y] = (nr, nd)
                    parent[y] = (x, e.lit)
                    heappush(heap, (nr, nd, y))
        return settled, parent

    def _path_lits(
        self,
        s: int,
        t: int,
        u: int,
        v: int,
        edge: _Edge,
        back_par: Dict[int, Tuple[int, int]],
        fwd_par: Dict[int, Tuple[int, int]],
    ) -> Tuple[int, ...]:
        """Asserted literals along the path ``s ~> u -> v ~> t``."""
        seen = set()
        lits: List[int] = []

        def add(lit: int) -> None:
            if lit >= 0 and lit not in seen:
                seen.add(lit)
                lits.append(lit)

        node = s
        while node != u:
            node, lit = back_par[node]
            add(lit)
        add(edge.lit)
        tail: List[int] = []
        node = t
        while node != v:
            node, lit = fwd_par[node]
            tail.append(lit)
        for lit in reversed(tail):
            add(lit)
        return tuple(lits)

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------

    def solution(self) -> List[DeltaRational]:
        """A satisfying assignment: ``val(x) = pi(x)``.

        The potential is feasible, i.e. ``pi(u) + w - pi(v) >= 0`` for every
        active edge ``u -> v`` (which encodes ``val(v) - val(u) <= w``), so
        ``val = pi`` satisfies every asserted difference constraint.
        """
        scale = self._scale
        return [
            DeltaRational(Fraction(r, scale), Fraction(d, scale))
            for r, d in zip(self._pi_r, self._pi_d)
        ]

    def check_feasible_assignment(self) -> bool:
        """Debug helper: verify the potential is feasible for all edges."""
        pi_r, pi_d = self._pi_r, self._pi_d
        for u, targets in enumerate(self._out):
            for v, e in targets.items():
                sr = pi_r[u] + e.wr - pi_r[v]
                if sr < 0 or (sr == 0 and pi_d[u] + e.wd - pi_d[v] < 0):
                    return False
        return True


class ImpliedBound:
    """One derived transitive bound: ``val(dst) - val(src) <= bound``.

    Produced by :meth:`DifferenceLogic.implied_bounds`.  The proving
    path's asserted literals are materialized on first
    :meth:`path_lits` call only — consumers typically check the bound
    against their atom thresholds first and never pay for explanations
    of irrelevant pairs.  Valid until the engine is next mutated
    (assert/undo), i.e. within the propagation fixpoint that drained it.
    """

    __slots__ = ("src", "dst", "wr", "wd",
                 "_dl", "_u", "_v", "_edge", "_back_par", "_fwd_par",
                 "_lits", "_bound")

    def __init__(self, dl: DifferenceLogic, src: int, dst: int,
                 wr: int, wd: int, u: int, v: int, edge: _Edge,
                 back_par: Dict[int, Tuple[int, int]],
                 fwd_par: Dict[int, Tuple[int, int]]) -> None:
        self.src = src
        self.dst = dst
        #: The derived bound in engine scale (compare against
        #: :meth:`DifferenceLogic.scaled_bound` values — no Fraction
        #: work on the propagation hot path).
        self.wr = wr
        self.wd = wd
        self._dl = dl
        self._u = u
        self._v = v
        self._edge = edge
        self._back_par = back_par
        self._fwd_par = fwd_par
        self._lits: Optional[Tuple[int, ...]] = None
        self._bound: Optional[DeltaRational] = None

    @property
    def bound(self) -> DeltaRational:
        """The derived bound as a :class:`DeltaRational` (cached)."""
        if self._bound is None:
            scale = self._dl._scale
            self._bound = DeltaRational(
                Fraction(self.wr, scale), Fraction(self.wd, scale)
            )
        return self._bound

    def path_lits(self) -> Tuple[int, ...]:
        """Asserted literals of the proving path (cached)."""
        if self._lits is None:
            self._lits = self._dl._path_lits(
                self.src, self.dst, self._u, self._v, self._edge,
                self._back_par, self._fwd_par,
            )
        return self._lits
