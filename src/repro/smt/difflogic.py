"""Incremental difference-logic engine (Cotton–Maler style).

Handles conjunctions of constraints ``x - y <= c`` / ``x - y < c`` (and
single-variable bounds via a distinguished zero node).  This is the
workhorse theory for the scheduling atoms of the paper's encoding:
transposition (Eq. 6) and contention-free (Eq. 5) constraints are all
difference atoms, so conflicts among them are detected *eagerly* during the
SAT search with near-linear incremental cost.

The engine maintains a feasible potential function ``pi`` over the
constraint graph (edge ``u -> v`` with weight ``w`` encodes
``val(v) - val(u) <= w``).  Adding an edge triggers a Dijkstra-like
restoration of the potential; failure to restore yields a negative cycle
whose edge literals form the conflict explanation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .rationals import DeltaRational, ZERO


class _Edge:
    __slots__ = ("weight", "lit")

    def __init__(self, weight: DeltaRational, lit: int):
        self.weight = weight
        self.lit = lit


class DifferenceLogic:
    """Incremental feasibility of difference constraints with explanations.

    Nodes are dense integer ids allocated by :meth:`new_node`.  Node 0 is
    conventionally the "zero" reference node (created eagerly) so callers
    can express single-variable bounds as differences against it.
    """

    def __init__(self) -> None:
        self._pi: List[DeltaRational] = [ZERO]
        # adjacency: u -> {v: _Edge} keeping only the tightest active edge.
        self._out: List[Dict[int, _Edge]] = [{}]
        self._in: List[Dict[int, _Edge]] = [{}]
        # Undo trail: ("new", u, v) or ("upd", u, v, old_edge)
        self._trail: List[Tuple] = []

    @property
    def zero_node(self) -> int:
        return 0

    def new_node(self) -> int:
        self._pi.append(ZERO)
        self._out.append({})
        self._in.append({})
        return len(self._pi) - 1

    @property
    def num_nodes(self) -> int:
        return len(self._pi)

    def mark(self) -> int:
        """Current undo-trail position (for backtracking)."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Remove all edges asserted after ``mark``."""
        while len(self._trail) > mark:
            entry = self._trail.pop()
            if entry[0] == "new":
                _, u, v = entry
                del self._out[u][v]
                del self._in[v][u]
            else:
                _, u, v, old = entry
                self._out[u][v] = old
                self._in[v][u] = old

    def assert_constraint(
        self, x: int, y: int, bound: DeltaRational, lit: int
    ) -> Optional[List[int]]:
        """Assert ``val(x) - val(y) <= bound`` (edge ``y -> x``).

        Returns None if still feasible, otherwise the list of literals of a
        negative cycle (including ``lit``), and leaves the engine state
        unchanged apart from the recorded trail entry (callers are expected
        to backtrack via :meth:`undo_to`).
        """
        u, v, w = y, x, bound
        existing = self._out[u].get(v)
        if existing is not None and existing.weight <= w:
            # Weaker than an active constraint: record a no-op for the trail
            # alignment handled by the caller (we record nothing here).
            self._trail.append(("upd", u, v, existing))
            self._out[u][v] = existing  # unchanged
            return None
        edge = _Edge(w, lit)
        if existing is None:
            self._trail.append(("new", u, v))
        else:
            self._trail.append(("upd", u, v, existing))
        self._out[u][v] = edge
        self._in[v][u] = edge
        conflict = self._restore_potential(u, v, edge)
        return conflict

    # ------------------------------------------------------------------
    # Potential restoration (Cotton & Maler, 2006)
    # ------------------------------------------------------------------

    def _restore_potential(self, u: int, v: int, edge: _Edge) -> Optional[List[int]]:
        pi = self._pi
        slack = pi[u] + edge.weight - pi[v]
        if slack >= ZERO:
            return None
        gamma: Dict[int, DeltaRational] = {v: slack}
        parent: Dict[int, int] = {v: u}
        new_pi: Dict[int, DeltaRational] = {}
        heap: List[Tuple] = [(slack, v)]
        counter = 0
        while heap:
            g, x = heapq.heappop(heap)
            if x in new_pi or gamma.get(x, ZERO) != g:
                continue  # stale entry
            if g >= ZERO:
                break
            if x == u:
                # Relaxation wrapped around to the source of the new edge:
                # negative cycle through the new edge.
                return self._cycle_explanation(u, v, parent, edge)
            new_pi[x] = pi[x] + g
            for y, e in self._out[x].items():
                if y in new_pi:
                    continue
                cand = new_pi[x] + e.weight - pi[y]
                if cand < ZERO and cand < gamma.get(y, ZERO):
                    gamma[y] = cand
                    parent[y] = x
                    counter += 1
                    heapq.heappush(heap, (cand, y))
        for x, val in new_pi.items():
            pi[x] = val
        return None

    def _cycle_explanation(
        self, u: int, v: int, parent: Dict[int, int], new_edge: _Edge
    ) -> List[int]:
        """Collect the literals along the cycle u -> v -> ... -> u."""
        lits = [new_edge.lit]
        node = u
        # Walk parent pointers from u back to v.
        while node != v:
            prev = parent[node]
            lits.append(self._out[prev][node].lit)
            node = prev
        # Deduplicate while preserving order (a literal may label two edges).
        seen = set()
        out = []
        for l in lits:
            if l not in seen and l >= 0:
                seen.add(l)
                out.append(l)
        return out

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------

    def solution(self) -> List[DeltaRational]:
        """A satisfying assignment: ``val(x) = pi(x)``.

        The potential is feasible, i.e. ``pi(u) + w - pi(v) >= 0`` for every
        active edge ``u -> v`` (which encodes ``val(v) - val(u) <= w``), so
        ``val = pi`` satisfies every asserted difference constraint.
        """
        return list(self._pi)

    def check_feasible_assignment(self) -> bool:
        """Debug helper: verify the potential is feasible for all edges."""
        for u, targets in enumerate(self._out):
            for v, e in targets.items():
                if self._pi[u] + e.weight - self._pi[v] < ZERO:
                    return False
        return True
