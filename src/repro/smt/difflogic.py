"""Incremental difference-logic engine (Cotton–Maler style).

Handles conjunctions of constraints ``x - y <= c`` / ``x - y < c`` (and
single-variable bounds via a distinguished zero node).  This is the
workhorse theory for the scheduling atoms of the paper's encoding:
transposition (Eq. 6) and contention-free (Eq. 5) constraints are all
difference atoms, so conflicts among them are detected *eagerly* during the
SAT search with near-linear incremental cost.

The engine maintains a feasible potential function ``pi`` over the
constraint graph (edge ``u -> v`` with weight ``w`` encodes
``val(v) - val(u) <= w``).  Adding an edge triggers a Dijkstra-like
restoration of the potential; failure to restore yields a negative cycle
whose edge literals form the conflict explanation.

Number representation
---------------------

This module is the solver's single hottest loop (millions of potential
relaxations per synthesis run), and profiling showed >60% of its time
inside ``Fraction``'s operator dispatch.  All quantities are therefore
stored as *scaled integer pairs*: a delta-rational ``a + b*delta`` becomes
``(a*S, b*S)`` for one engine-wide positive integer scale ``S``.  Sums and
comparisons are then plain (lexicographic) machine-integer operations with
no allocation.  ``S`` grows lazily (by an LCM step that rescales all stored
state) whenever an asserted bound needs a finer denominator; on the paper's
workloads the denominators come from a small fixed set of timing constants,
so rescaling happens a handful of times per run and the arithmetic is
exact — this is a change of units, not an approximation.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from fractions import Fraction

from .rationals import DeltaRational


class _Edge:
    """Tightest active constraint for one ordered node pair (scaled ints)."""

    __slots__ = ("wr", "wd", "lit")

    def __init__(self, wr: int, wd: int, lit: int):
        self.wr = wr
        self.wd = wd
        self.lit = lit


class DifferenceLogic:
    """Incremental feasibility of difference constraints with explanations.

    Nodes are dense integer ids allocated by :meth:`new_node`.  Node 0 is
    conventionally the "zero" reference node (created eagerly) so callers
    can express single-variable bounds as differences against it.
    """

    def __init__(self) -> None:
        #: Engine-wide denominator: stored value (r, d) means (r + d*delta)/S.
        self._scale = 1
        self._pi_r: List[int] = [0]
        self._pi_d: List[int] = [0]
        # adjacency: u -> {v: _Edge} keeping only the tightest active edge.
        self._out: List[Dict[int, _Edge]] = [{}]
        self._in: List[Dict[int, _Edge]] = [{}]
        # Undo trail: ("new", u, v) or ("upd", u, v, old_edge)
        self._trail: List[Tuple] = []

    @property
    def zero_node(self) -> int:
        return 0

    def new_node(self) -> int:
        self._pi_r.append(0)
        self._pi_d.append(0)
        self._out.append({})
        self._in.append({})
        return len(self._pi_r) - 1

    @property
    def num_nodes(self) -> int:
        return len(self._pi_r)

    def mark(self) -> int:
        """Current undo-trail position (for backtracking)."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Remove all edges asserted after ``mark``."""
        while len(self._trail) > mark:
            entry = self._trail.pop()
            if entry[0] == "new":
                _, u, v = entry
                del self._out[u][v]
                del self._in[v][u]
            else:
                _, u, v, old = entry
                self._out[u][v] = old
                self._in[v][u] = old

    # ------------------------------------------------------------------
    # Scaled-integer bookkeeping
    # ------------------------------------------------------------------

    def _rescale(self, factor: int) -> None:
        """Multiply the engine scale (and every stored value) by ``factor``."""
        self._scale *= factor
        self._pi_r = [r * factor for r in self._pi_r]
        self._pi_d = [d * factor for d in self._pi_d]
        seen = set()
        for targets in self._out:
            for edge in targets.values():
                if id(edge) not in seen:
                    seen.add(id(edge))
                    edge.wr *= factor
                    edge.wd *= factor
        # Superseded edges parked on the trail must stay in sync too: an
        # undo_to() may reinstall them after the rescale.
        for entry in self._trail:
            if entry[0] == "upd":
                edge = entry[3]
                if id(edge) not in seen:
                    seen.add(id(edge))
                    edge.wr *= factor
                    edge.wd *= factor

    def _scaled(self, bound: DeltaRational) -> Tuple[int, int]:
        """Convert a delta-rational to the engine's integer scale."""
        real, delta = bound.real, bound.delta
        scale = self._scale
        rden, dden = real.denominator, delta.denominator
        if scale % rden or scale % dden:
            need = rden * dden // math.gcd(rden, dden)
            self._rescale(need // math.gcd(need, scale))
            scale = self._scale
        return (real.numerator * (scale // rden),
                delta.numerator * (scale // dden))

    def assert_constraint(
        self, x: int, y: int, bound: DeltaRational, lit: int
    ) -> Optional[List[int]]:
        """Assert ``val(x) - val(y) <= bound`` (edge ``y -> x``).

        Returns None if still feasible, otherwise the list of literals of a
        negative cycle (including ``lit``), and leaves the engine state
        unchanged apart from the recorded trail entry (callers are expected
        to backtrack via :meth:`undo_to`).
        """
        u, v = y, x
        wr, wd = self._scaled(bound)
        existing = self._out[u].get(v)
        if existing is not None and (
            existing.wr < wr or (existing.wr == wr and existing.wd <= wd)
        ):
            # Weaker than an active constraint: record a no-op for the trail
            # alignment handled by the caller (we record nothing here).
            self._trail.append(("upd", u, v, existing))
            return None
        edge = _Edge(wr, wd, lit)
        if existing is None:
            self._trail.append(("new", u, v))
        else:
            self._trail.append(("upd", u, v, existing))
        self._out[u][v] = edge
        self._in[v][u] = edge
        return self._restore_potential(u, v, edge)

    # ------------------------------------------------------------------
    # Potential restoration (Cotton & Maler, 2006)
    # ------------------------------------------------------------------

    def _restore_potential(self, u: int, v: int, edge: _Edge) -> Optional[List[int]]:
        pi_r, pi_d = self._pi_r, self._pi_d
        sr = pi_r[u] + edge.wr - pi_r[v]
        sd = pi_d[u] + edge.wd - pi_d[v]
        if sr > 0 or (sr == 0 and sd >= 0):
            return None
        gamma: Dict[int, Tuple[int, int]] = {v: (sr, sd)}
        parent: Dict[int, int] = {v: u}
        new_pi: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[int, int, int]] = [(sr, sd, v)]
        out = self._out
        while heap:
            gr, gd, x = heappop(heap)
            if x in new_pi or gamma.get(x) != (gr, gd):
                continue  # stale entry
            if gr > 0 or (gr == 0 and gd >= 0):
                break
            if x == u:
                # Relaxation wrapped around to the source of the new edge:
                # negative cycle through the new edge.
                return self._cycle_explanation(u, v, parent, edge)
            nr = pi_r[x] + gr
            nd = pi_d[x] + gd
            new_pi[x] = (nr, nd)
            for y, e in out[x].items():
                if y in new_pi:
                    continue
                cr = nr + e.wr - pi_r[y]
                cd = nd + e.wd - pi_d[y]
                if cr < 0 or (cr == 0 and cd < 0):
                    old = gamma.get(y)
                    if old is None or cr < old[0] or (cr == old[0] and cd < old[1]):
                        gamma[y] = (cr, cd)
                        parent[y] = x
                        heappush(heap, (cr, cd, y))
        for x, (nr, nd) in new_pi.items():
            pi_r[x] = nr
            pi_d[x] = nd
        return None

    def _cycle_explanation(
        self, u: int, v: int, parent: Dict[int, int], new_edge: _Edge
    ) -> List[int]:
        """Collect the literals along the cycle u -> v -> ... -> u."""
        lits = [new_edge.lit]
        node = u
        # Walk parent pointers from u back to v.
        while node != v:
            prev = parent[node]
            lits.append(self._out[prev][node].lit)
            node = prev
        # Deduplicate while preserving order (a literal may label two edges).
        seen = set()
        out = []
        for l in lits:
            if l not in seen and l >= 0:
                seen.add(l)
                out.append(l)
        return out

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------

    def solution(self) -> List[DeltaRational]:
        """A satisfying assignment: ``val(x) = pi(x)``.

        The potential is feasible, i.e. ``pi(u) + w - pi(v) >= 0`` for every
        active edge ``u -> v`` (which encodes ``val(v) - val(u) <= w``), so
        ``val = pi`` satisfies every asserted difference constraint.
        """
        scale = self._scale
        return [
            DeltaRational(Fraction(r, scale), Fraction(d, scale))
            for r, d in zip(self._pi_r, self._pi_d)
        ]

    def check_feasible_assignment(self) -> bool:
        """Debug helper: verify the potential is feasible for all edges."""
        pi_r, pi_d = self._pi_r, self._pi_d
        for u, targets in enumerate(self._out):
            for v, e in targets.items():
                sr = pi_r[u] + e.wr - pi_r[v]
                if sr < 0 or (sr == 0 and pi_d[u] + e.wd - pi_d[v] < 0):
                    return False
        return True
