"""Exact numbers for linear real arithmetic with strict inequalities.

A :class:`DeltaRational` is a pair ``a + b*delta`` where ``delta`` is a
positive infinitesimal.  Strict bounds like ``x > 3`` are represented as the
non-strict bound ``x >= 3 + delta``; at model-extraction time ``delta`` is
materialized as a concrete small positive rational (see
:func:`materialize_delta`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

Number = Union[int, Fraction]


class DeltaRational:
    """An element of Q + Q*delta with exact arithmetic and total order."""

    __slots__ = ("real", "delta")

    def __init__(self, real: Number = 0, delta: Number = 0):
        # Avoid re-wrapping Fractions: this constructor is on the solver's
        # hottest path (millions of calls in one synthesis run).
        self.real = real if type(real) is Fraction else Fraction(real)
        self.delta = delta if type(delta) is Fraction else Fraction(delta)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "DeltaRational | Number") -> "DeltaRational":
        if type(other) is not DeltaRational:
            other = _coerce(other)
        return DeltaRational(self.real + other.real, self.delta + other.delta)

    __radd__ = __add__

    def __sub__(self, other: "DeltaRational | Number") -> "DeltaRational":
        if type(other) is not DeltaRational:
            other = _coerce(other)
        return DeltaRational(self.real - other.real, self.delta - other.delta)

    def __rsub__(self, other: "DeltaRational | Number") -> "DeltaRational":
        return _coerce(other) - self

    def __neg__(self) -> "DeltaRational":
        return DeltaRational(-self.real, -self.delta)

    def __mul__(self, k: Number) -> "DeltaRational":
        k = Fraction(k)
        return DeltaRational(self.real * k, self.delta * k)

    __rmul__ = __mul__

    def __truediv__(self, k: Number) -> "DeltaRational":
        k = Fraction(k)
        return DeltaRational(self.real / k, self.delta / k)

    # -- comparisons ---------------------------------------------------------

    def _cmp(self, other: "DeltaRational | Number") -> int:
        if type(other) is not DeltaRational:
            other = _coerce(other)
        # Cross-multiplied integer comparison: Fraction's own comparison
        # operators pay for numbers-ABC isinstance checks on every call,
        # which dominates solver profiles.
        a, b = self.real, other.real
        lhs = a.numerator * b.denominator
        rhs = b.numerator * a.denominator
        if lhs != rhs:
            return -1 if lhs < rhs else 1
        a, b = self.delta, other.delta
        lhs = a.numerator * b.denominator
        rhs = b.numerator * a.denominator
        if lhs != rhs:
            return -1 if lhs < rhs else 1
        return 0

    def __lt__(self, other) -> bool:
        return self._cmp(other) < 0

    def __le__(self, other) -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other) -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other) -> bool:
        return self._cmp(other) >= 0

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, (DeltaRational, int, Fraction)):
            return NotImplemented
        return self._cmp(other) == 0

    def __hash__(self) -> int:
        return hash((self.real, self.delta))

    def __repr__(self) -> str:
        if self.delta == 0:
            return f"{self.real}"
        sign = "+" if self.delta > 0 else "-"
        return f"{self.real} {sign} {abs(self.delta)}d"


def _coerce(value: "DeltaRational | Number") -> DeltaRational:
    if isinstance(value, DeltaRational):
        return value
    return DeltaRational(value)


ZERO = DeltaRational(0)


def materialize_delta(pairs: Iterable[tuple[DeltaRational, DeltaRational]]) -> Fraction:
    """Choose a concrete positive value for ``delta``.

    ``pairs`` iterates over ordered pairs ``(lo, hi)`` with ``lo <= hi`` in
    the delta-rational order; the returned epsilon keeps
    ``lo.real + lo.delta*eps <= hi.real + hi.delta*eps`` for every pair.
    """
    eps = Fraction(1)
    for lo, hi in pairs:
        dreal = hi.real - lo.real
        ddelta = lo.delta - hi.delta
        # Need dreal >= ddelta * eps; only binding when ddelta > 0.
        if ddelta > 0:
            limit = dreal / ddelta
            if limit <= 0:
                raise ValueError("inconsistent delta-rational ordering")
            eps = min(eps, limit / 2 if dreal > 0 else limit)
    if eps <= 0:
        raise ValueError("no feasible delta materialization")
    return eps
