"""Tseitin CNF conversion from the term language to the SAT core.

Each distinct subformula gets one SAT variable; linear atoms are
deduplicated by canonical key and registered with the theory backend so
both phases of their SAT variable drive theory assertions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import SolverError
from ..sat.literals import lit, neg
from ..sat.solver import SatSolver
from .terms import (
    AndExpr,
    Atom,
    BoolConst,
    BoolExpr,
    BoolVar,
    NotExpr,
    OrExpr,
)
from .theory import LraTheory


class CnfConverter:
    """Converts Boolean formulas to clauses inside a :class:`SatSolver`."""

    def __init__(self, sat: SatSolver, theory: LraTheory):
        self._sat = sat
        self._theory = theory
        self._bool_vars: Dict[BoolVar, int] = {}
        self._atom_vars: Dict[Tuple, int] = {}
        self._node_cache: Dict[int, int] = {}
        self._true_lit: int | None = None
        # SAT variable -> originating BoolVar/Atom, for the clause-sharing
        # export path (Tseitin and scope variables have no stable origin
        # and are deliberately absent).
        self._origins: Dict[int, BoolExpr] = {}

    # ------------------------------------------------------------------

    @property
    def bool_vars(self) -> Dict[BoolVar, int]:
        return self._bool_vars

    def origin_of(self, var: int) -> BoolExpr | None:
        """The interned BoolVar/Atom a SAT variable stands for, if any.

        Returns None for internal variables (Tseitin definitions, the
        constant-true variable): their meaning is solver-local, so clauses
        over them are not exportable.
        """
        return self._origins.get(var)

    def assert_formula(self, expr: BoolExpr) -> None:
        """Assert ``expr`` at the root level."""
        if isinstance(expr, BoolConst):
            if not expr.value:
                # Assert false: add an empty clause via two contradicting units.
                v = self._sat.new_var()
                self._sat.add_clause([lit(v)])
                self._sat.add_clause([lit(v, False)])
            return
        if isinstance(expr, AndExpr):
            # Top-level conjunctions do not need Tseitin variables.
            for arg in expr.args:
                self.assert_formula(arg)
            return
        if isinstance(expr, OrExpr):
            # Top-level disjunction: one clause over the children literals.
            self._sat.add_clause([self.literal_for(a) for a in expr.args])
            return
        self._sat.add_clause([self.literal_for(expr)])

    # ------------------------------------------------------------------

    def literal_for(self, expr: BoolExpr) -> int:
        """Return a SAT literal equisatisfiably representing ``expr``."""
        if isinstance(expr, BoolConst):
            return self._const_literal(expr.value)
        if isinstance(expr, BoolVar):
            return lit(self._var_for_bool(expr))
        if isinstance(expr, Atom):
            return lit(self._var_for_atom(expr))
        if isinstance(expr, NotExpr):
            return neg(self.literal_for(expr.arg))
        cached = self._node_cache.get(id(expr))
        if cached is not None:
            return cached
        if isinstance(expr, AndExpr):
            out = self._tseitin_and([self.literal_for(a) for a in expr.args])
        elif isinstance(expr, OrExpr):
            out = self._tseitin_or([self.literal_for(a) for a in expr.args])
        else:
            raise SolverError(f"unsupported formula node: {expr!r}")
        self._node_cache[id(expr)] = out
        return out

    # ------------------------------------------------------------------

    def _const_literal(self, value: bool) -> int:
        if self._true_lit is None:
            v = self._sat.new_var()
            self._true_lit = lit(v)
            self._sat.add_clause([self._true_lit])
        return self._true_lit if value else neg(self._true_lit)

    def _var_for_bool(self, var: BoolVar) -> int:
        v = self._bool_vars.get(var)
        if v is None:
            v = self._sat.new_var()
            self._bool_vars[var] = v
            self._origins[v] = var
        return v

    def _var_for_atom(self, atom: Atom) -> int:
        key = atom.key
        v = self._atom_vars.get(key)
        if v is None:
            v = self._sat.new_var()
            self._atom_vars[key] = v
            self._origins[v] = atom
            self._theory.register_atom(atom, v)
        return v

    def _tseitin_and(self, lits: list[int]) -> int:
        v = self._sat.new_var()
        p = lit(v)
        for l in lits:
            self._sat.add_clause([neg(p), l])
        self._sat.add_clause([p] + [neg(l) for l in lits])
        return p

    def _tseitin_or(self, lits: list[int]) -> int:
        v = self._sat.new_var()
        p = lit(v)
        self._sat.add_clause([neg(p)] + lits)
        for l in lits:
            self._sat.add_clause([p, neg(l)])
        return p
