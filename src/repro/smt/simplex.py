"""General simplex for linear real arithmetic (Dutertre & de Moura, 2006).

This is the *certifying* theory engine of the SMT substrate: it decides
conjunctions of bounds over variables related by linear rows, with exact
``Fraction`` arithmetic and :class:`~repro.smt.rationals.DeltaRational`
bounds for strict inequalities.  The difference-logic engine
(:mod:`repro.smt.difflogic`) catches most scheduling conflicts eagerly; the
simplex handles the paper's non-unit-coefficient *stability* atoms
(``(1-a)*Lmin + a*Lmax <= b``) and certifies full assignments.

The solver state is backtrackable via a bound trail (:meth:`mark` /
:meth:`undo_to`); the tableau itself is never undone because pivoting is an
equivalence transformation and rows are definitional.

Hot-path layout
---------------

All per-variable state lives in flat parallel lists indexed by variable:
``beta`` is split into its rational and delta components (two ``Fraction``
lists) so the pivot/update loops do plain Fraction adds with **no
DeltaRational allocation**, and delta-component work is skipped entirely
when the delta part of an update is zero (the common case).  Candidate
violated variables are kept in a lazy min-heap (Bland's rule pops the
smallest index directly — no ``sorted()`` per pivot iteration), and a float
mirror of ``beta``/bounds supports an opt-in pre-filter
(``Simplex(float_prefilter=True)``) that answers clear-cut bound
comparisons in float and falls back to exact arithmetic on near-ties.
"""

from __future__ import annotations

from fractions import Fraction
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from .rationals import DeltaRational, materialize_delta

NO_LIT = -1


class Simplex:
    """Incremental simplex over ``Q + Q*delta`` with conflict explanations."""

    def __init__(self, float_prefilter: bool = False) -> None:
        self._n = 0
        self._float_prefilter = float_prefilter
        # Bounds as DeltaRational (assertions are rare; comparisons on the
        # hot path read .real/.delta directly).
        self._lower: List[Optional[DeltaRational]] = []
        self._upper: List[Optional[DeltaRational]] = []
        self._lower_lit: List[int] = []
        self._upper_lit: List[int] = []
        # beta split into parallel Fraction components + a float mirror.
        self._beta_r: List[Fraction] = []
        self._beta_d: List[Fraction] = []
        self._beta_f: List[float] = []
        self._lower_f: List[float] = []
        self._upper_f: List[float] = []
        self._is_basic: List[bool] = []
        # For basic variables: row mapping nonbasic var -> coefficient
        # (None for nonbasic variables).
        self._rows: List[Optional[Dict[int, Fraction]]] = []
        # For nonbasic variables: set of basic variables whose row uses them.
        self._cols: List[Set[int]] = []
        # Bound-change trail: (var, is_lower, old_bound, old_lit, touched)
        # where ``touched`` records that this assertion added ``var`` to
        # ``touched_bounds`` — undo then removes it again, so a backjump
        # never leaves stale entries for the propagation layer to rescan.
        self._trail: List[
            Tuple[int, bool, Optional[DeltaRational], int, bool]
        ] = []
        # Nonbasic variables whose beta may violate a freshly tightened
        # bound; repaired lazily at the start of check().
        self._dirty: Set[int] = set()
        # Basic variables whose beta or bounds changed since the last
        # check(): the only candidates for bound violations (avoids a full
        # O(n) scan per pivot iteration).  Invariant: every violating
        # basic variable is in this set.  Mirrored as a min-heap so Bland's
        # rule pops the smallest suspect index without sorting.
        self._suspects: Set[int] = set()
        self._suspects_heap: List[int] = []
        # Variables whose bound was tightened since the last drain — the
        # theory-propagation layer consumes this (see LraTheory.propagate).
        # Only *watched* variables (see watch_var) are tracked: bound
        # tightenings on anything else can never imply a registered atom,
        # and the per-assert set-add plus per-fixpoint drain would dominate
        # the hook's cost.
        self.touched_bounds: Set[int] = set()
        self._watched: List[bool] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh structural (nonbasic) variable."""
        idx = self._n
        self._n += 1
        self._lower.append(None)
        self._upper.append(None)
        self._lower_lit.append(NO_LIT)
        self._upper_lit.append(NO_LIT)
        self._beta_r.append(_F0)
        self._beta_d.append(_F0)
        self._mirror_new_var()
        self._is_basic.append(False)
        self._rows.append(None)
        self._cols.append(set())
        self._watched.append(False)
        return idx

    def watch_var(self, var: int) -> None:
        """Report bound tightenings of ``var`` through ``touched_bounds``."""
        self._watched[var] = True

    def add_row(self, coeffs: Dict[int, Fraction]) -> int:
        """Introduce a slack variable ``s = sum(coeffs)`` and return it.

        Any *basic* variable appearing in ``coeffs`` is substituted by its
        defining row so the new row mentions only nonbasic variables.
        """
        expanded: Dict[int, Fraction] = {}
        for var, coeff in coeffs.items():
            if coeff == 0:
                continue
            if self._is_basic[var]:
                for v2, c2 in self._rows[var].items():
                    expanded[v2] = expanded.get(v2, _F0) + coeff * c2
            else:
                expanded[var] = expanded.get(var, _F0) + coeff
        expanded = {v: c for v, c in expanded.items() if c != 0}
        s = self.new_var()
        self._is_basic[s] = True
        self._rows[s] = expanded
        for v in expanded:
            self._cols[v].add(s)
        r, d = self._row_value(s)
        self._beta_r[s] = r
        self._beta_d[s] = d
        if self._float_prefilter:
            self._resync_float(s)
        return s

    def _row_value(self, basic: int) -> Tuple[Fraction, Fraction]:
        total_r = _F0
        total_d = _F0
        beta_r, beta_d = self._beta_r, self._beta_d
        for v, c in self._rows[basic].items():
            total_r += beta_r[v] * c
            total_d += beta_d[v] * c
        return total_r, total_d

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def mark(self) -> int:
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        mirror = self._float_prefilter
        while len(self._trail) > mark:
            var, is_lower, old_bound, old_lit, touched = self._trail.pop()
            if touched:
                # This assertion was the one that marked ``var`` touched:
                # un-mark it, so the next propagate() fixpoint does not
                # rescan watches against the now-relaxed bound.
                self.touched_bounds.discard(var)
            if is_lower:
                self._lower[var] = old_bound
                self._lower_lit[var] = old_lit
                if mirror:
                    self._mirror_set_lower(var, old_bound)
            else:
                self._upper[var] = old_bound
                self._upper_lit[var] = old_lit
                if mirror:
                    self._mirror_set_upper(var, old_bound)

    # ------------------------------------------------------------------
    # Bound assertion
    # ------------------------------------------------------------------

    def assert_lower(self, var: int, bound: DeltaRational, lit: int) -> Optional[List[int]]:
        """Assert ``var >= bound``; returns a conflict explanation or None."""
        upper = self._upper[var]
        if upper is not None and bound > upper:
            return self._pair_conflict(lit, self._upper_lit[var])
        current = self._lower[var]
        tightens = current is None or bound > current
        fresh_touch = (tightens and self._watched[var]
                       and var not in self.touched_bounds)
        self._trail.append(
            (var, True, current, self._lower_lit[var], fresh_touch)
        )
        if tightens:
            self._lower[var] = bound
            self._lower_lit[var] = lit
            if self._float_prefilter:
                self._mirror_set_lower(var, bound)
            if fresh_touch:
                self.touched_bounds.add(var)
            if self._is_basic[var]:
                self._add_suspect(var)
            elif self._below(var, bound):
                self._dirty.add(var)
        return None

    def assert_upper(self, var: int, bound: DeltaRational, lit: int) -> Optional[List[int]]:
        """Assert ``var <= bound``; returns a conflict explanation or None."""
        lower = self._lower[var]
        if lower is not None and bound < lower:
            return self._pair_conflict(lit, self._lower_lit[var])
        current = self._upper[var]
        tightens = current is None or bound < current
        fresh_touch = (tightens and self._watched[var]
                       and var not in self.touched_bounds)
        self._trail.append(
            (var, False, current, self._upper_lit[var], fresh_touch)
        )
        if tightens:
            self._upper[var] = bound
            self._upper_lit[var] = lit
            if self._float_prefilter:
                self._mirror_set_upper(var, bound)
            if fresh_touch:
                self.touched_bounds.add(var)
            if self._is_basic[var]:
                self._add_suspect(var)
            elif self._above(var, bound):
                self._dirty.add(var)
        return None

    @staticmethod
    def _pair_conflict(lit_a: int, lit_b: int) -> List[int]:
        return [l for l in (lit_a, lit_b) if l != NO_LIT]

    def _add_suspect(self, var: int) -> None:
        if var not in self._suspects:
            self._suspects.add(var)
            heappush(self._suspects_heap, var)

    # ------------------------------------------------------------------
    # Float mirror (advisory prefilter)
    # ------------------------------------------------------------------
    # The mirror is the one deliberate float island in the exact core:
    # every float value lives in the ``_mirror_*`` methods below (plus
    # the two sentinels), verdicts leave as tri-state ints, and every
    # near-tie answer falls back to exact arithmetic in the callers.
    # repro: allow[exact-arith]:begin advisory float mirror — tri-state
    # verdicts only; misses fall back to exact Fraction comparisons

    #: Mirror sentinel for "no bound asserted".
    _INF = float("inf")

    #: Relative guard band: float comparisons whose operands differ by
    #: less than this (relative) margin are re-done exactly.
    _FLOAT_GUARD = 1e-6

    def _mirror_new_var(self) -> None:
        """Extend the mirror lists for a freshly allocated variable."""
        self._beta_f.append(0.0)
        self._lower_f.append(-self._INF)
        self._upper_f.append(self._INF)

    def _mirror_set_lower(self, var: int,
                          bound: Optional[DeltaRational]) -> None:
        self._lower_f[var] = (
            float(bound.real) if bound is not None else -self._INF
        )

    def _mirror_set_upper(self, var: int,
                          bound: Optional[DeltaRational]) -> None:
        self._upper_f[var] = (
            float(bound.real) if bound is not None else self._INF
        )

    def _resync_float(self, var: int) -> None:
        """Refresh the float mirror of ``var`` from its exact value.

        The mirror is *recomputed*, never incrementally updated: an
        accumulated ``+=`` mirror can drift arbitrarily far from the exact
        value through catastrophic cancellation, which would let the
        pre-filter answer a comparison confidently and wrongly.  A fresh
        conversion is within 1 ulp of the exact value, so the relative
        guard band in :meth:`_mirror_below`/:meth:`_mirror_above` keeps
        the filter sound.
        """
        r = self._beta_r[var]
        try:
            self._beta_f[var] = r.numerator / r.denominator
        except OverflowError:
            # Magnitude beyond float range: force the exact fallback.
            self._beta_f[var] = float("nan")

    def _mirror_below(self, var: int) -> int:
        """1 if beta[var] is clearly below its lower bound, 0 if clearly
        not, -1 on a near-tie (caller must decide exactly)."""
        beta = self._beta_f[var]
        diff = beta - self._lower_f[var]
        if abs(diff) > self._FLOAT_GUARD * (1.0 + abs(beta)):
            return 1 if diff < 0.0 else 0
        return -1

    def _mirror_above(self, var: int) -> int:
        """1 if beta[var] is clearly above its upper bound, 0 if clearly
        not, -1 on a near-tie (caller must decide exactly)."""
        beta = self._beta_f[var]
        diff = beta - self._upper_f[var]
        if abs(diff) > self._FLOAT_GUARD * (1.0 + abs(beta)):
            return 1 if diff > 0.0 else 0
        return -1

    # repro: allow[exact-arith]:end

    # -- beta/bound comparisons (no DeltaRational allocation) ----------

    def _below(self, var: int, bound: DeltaRational) -> bool:
        """beta[var] < bound?"""
        if self._float_prefilter:
            verdict = self._mirror_below(var)
            if verdict >= 0:
                return verdict == 1
        r = self._beta_r[var]
        br = bound.real
        lhs = r.numerator * br.denominator
        rhs = br.numerator * r.denominator
        if lhs != rhs:
            return lhs < rhs
        d = self._beta_d[var]
        bd = bound.delta
        return d.numerator * bd.denominator < bd.numerator * d.denominator

    def _above(self, var: int, bound: DeltaRational) -> bool:
        """beta[var] > bound?"""
        if self._float_prefilter:
            verdict = self._mirror_above(var)
            if verdict >= 0:
                return verdict == 1
        r = self._beta_r[var]
        br = bound.real
        lhs = r.numerator * br.denominator
        rhs = br.numerator * r.denominator
        if lhs != rhs:
            return lhs > rhs
        d = self._beta_d[var]
        bd = bound.delta
        return d.numerator * bd.denominator > bd.numerator * d.denominator

    def _update(self, nonbasic: int, value: DeltaRational) -> None:
        beta_r, beta_d = self._beta_r, self._beta_d
        delta_r = value.real - beta_r[nonbasic]
        delta_d = value.delta - beta_d[nonbasic]
        beta_r[nonbasic] = value.real
        beta_d[nonbasic] = value.delta
        rows = self._rows
        mirror = self._float_prefilter
        zero_d = not delta_d
        for basic in self._cols[nonbasic]:
            coeff = rows[basic][nonbasic]
            beta_r[basic] += delta_r * coeff
            if not zero_d:
                beta_d[basic] += delta_d * coeff
            if mirror:
                self._resync_float(basic)
            self._add_suspect(basic)
        if mirror:
            self._resync_float(nonbasic)

    # ------------------------------------------------------------------
    # Check (Bland's rule)
    # ------------------------------------------------------------------

    def check(self) -> Optional[List[int]]:
        """Restore all basic variables into their bounds.

        Returns None when the current bound set is satisfiable (``beta`` is
        then a model), otherwise a conflict explanation: the list of
        asserted-literal ids of an infeasible bound subset (Farkas row).

        Bound assertions are lazy: nonbasic variables whose value drifted
        outside their (possibly backtracked-and-retightened) bounds are
        repaired here first, then the classic Bland pivoting runs.
        """
        if self._dirty:
            for var in self._dirty:
                if self._is_basic[var]:
                    continue
                lo, up = self._lower[var], self._upper[var]
                if lo is not None and self._below(var, lo):
                    self._update(var, lo)
                elif up is not None and self._above(var, up):
                    self._update(var, up)
            self._dirty.clear()
        suspects, heap = self._suspects, self._suspects_heap
        while True:
            # Bland's rule over the suspect set: the smallest-index
            # violating basic variable (every violating basic is a
            # suspect by the maintenance invariant).
            violating = -1
            below = False
            while heap:
                var = heappop(heap)
                if var not in suspects:
                    continue  # stale heap entry (already popped once)
                suspects.discard(var)
                if not self._is_basic[var]:
                    continue
                lo, up = self._lower[var], self._upper[var]
                if lo is not None and self._below(var, lo):
                    violating, below = var, True
                    break
                if up is not None and self._above(var, up):
                    violating, below = var, False
                    break
            if violating < 0:
                return None
            row = self._rows[violating]
            pivot_var = -1
            if below:
                target = self._lower[violating]
                for v, c in row.items():
                    if (pivot_var < 0 or v < pivot_var) and (
                        self._can_increase(v) if c > 0 else self._can_decrease(v)
                    ):
                        pivot_var = v
                if pivot_var < 0:
                    # Still violating after the caller backtracks (bounds
                    # only relax on undo): keep the suspect invariant.
                    self._add_suspect(violating)
                    return self._explain(violating, below=True)
            else:
                target = self._upper[violating]
                for v, c in row.items():
                    if (pivot_var < 0 or v < pivot_var) and (
                        self._can_decrease(v) if c > 0 else self._can_increase(v)
                    ):
                        pivot_var = v
                if pivot_var < 0:
                    self._add_suspect(violating)
                    return self._explain(violating, below=False)
            assert target is not None
            self._pivot_and_update(violating, pivot_var, target)

    def _can_increase(self, var: int) -> bool:
        up = self._upper[var]
        return up is None or self._below_bound(var, up)

    def _can_decrease(self, var: int) -> bool:
        lo = self._lower[var]
        return lo is None or self._above_bound(var, lo)

    def _below_bound(self, var: int, bound: DeltaRational) -> bool:
        """beta[var] < bound (no float shortcut: bound may be either side)."""
        r = self._beta_r[var]
        br = bound.real
        lhs = r.numerator * br.denominator
        rhs = br.numerator * r.denominator
        if lhs != rhs:
            return lhs < rhs
        d = self._beta_d[var]
        bd = bound.delta
        return d.numerator * bd.denominator < bd.numerator * d.denominator

    def _above_bound(self, var: int, bound: DeltaRational) -> bool:
        r = self._beta_r[var]
        br = bound.real
        lhs = r.numerator * br.denominator
        rhs = br.numerator * r.denominator
        if lhs != rhs:
            return lhs > rhs
        d = self._beta_d[var]
        bd = bound.delta
        return d.numerator * bd.denominator > bd.numerator * d.denominator

    def _explain(self, basic: int, below: bool) -> List[int]:
        """Farkas conflict: the violated bound plus the blocking bounds."""
        lits = []
        if below:
            lits.append(self._lower_lit[basic])
            for v, c in self._rows[basic].items():
                lits.append(self._upper_lit[v] if c > 0 else self._lower_lit[v])
        else:
            lits.append(self._upper_lit[basic])
            for v, c in self._rows[basic].items():
                lits.append(self._lower_lit[v] if c > 0 else self._upper_lit[v])
        seen = set()
        out = []
        for l in lits:
            if l != NO_LIT and l not in seen:
                seen.add(l)
                out.append(l)
        return out

    def _pivot_and_update(self, basic: int, nonbasic: int, value: DeltaRational) -> None:
        """Swap ``basic``/``nonbasic`` and set the old basic var to ``value``."""
        beta_r, beta_d = self._beta_r, self._beta_d
        rows, cols = self._rows, self._cols
        row = rows[basic]
        rows[basic] = None
        a = row[nonbasic]
        # Solve the row for `nonbasic`: nonbasic = basic/a - sum(others)/a.
        inv_a = _F1 / a
        new_row: Dict[int, Fraction] = {basic: inv_a}
        for v, c in row.items():
            if v != nonbasic:
                new_row[v] = -c * inv_a
        # Update beta before rewiring (theta = change of nonbasic).
        theta_r = (value.real - beta_r[basic]) * inv_a
        theta_d = (value.delta - beta_d[basic]) * inv_a
        beta_r[basic] = value.real
        beta_d[basic] = value.delta
        beta_r[nonbasic] += theta_r
        beta_d[nonbasic] += theta_d
        mirror = self._float_prefilter
        if mirror:
            self._resync_float(basic)
            self._resync_float(nonbasic)
        # Incrementally adjust every other basic row that uses `nonbasic`
        # (cheaper than recomputing whole row values after substitution).
        zero_d = not theta_d
        for b in cols[nonbasic]:
            if b != basic:
                coeff = rows[b][nonbasic]
                beta_r[b] += theta_r * coeff
                if not zero_d:
                    beta_d[b] += theta_d * coeff
                if mirror:
                    self._resync_float(b)
                self._add_suspect(b)
        # The entering variable may now violate its own bounds.
        self._add_suspect(nonbasic)
        # Rewire column index for the departing/incoming variables.
        for v in row:
            cols[v].discard(basic)
        self._is_basic[basic] = False
        self._is_basic[nonbasic] = True
        cols[basic] = set()
        rows[nonbasic] = new_row
        for v in new_row:
            cols[v].add(nonbasic)
        # Substitute `nonbasic` in every other row that used it.
        users = [b for b in cols[nonbasic] if b != nonbasic]
        cols[nonbasic] = set()
        for b in users:
            brow = rows[b]
            k = brow.pop(nonbasic)
            for v, c in new_row.items():
                nc = brow.get(v, _F0) + k * c
                if nc == 0:
                    brow.pop(v, None)
                    cols[v].discard(b)
                else:
                    brow[v] = nc
                    cols[v].add(b)
        # `basic` is now nonbasic: it appears in rows (at least new_row).
        cols[basic].add(nonbasic)
        for b in users:
            if basic in rows[b]:
                cols[basic].add(b)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------

    def model(self) -> List[Fraction]:
        """Concrete rational values for all variables (delta materialized)."""
        pairs = []
        for var in range(self._n):
            lo, up = self._lower[var], self._upper[var]
            beta = DeltaRational(self._beta_r[var], self._beta_d[var])
            if lo is not None:
                pairs.append((lo, beta))
            if up is not None:
                pairs.append((beta, up))
        eps = materialize_delta(pairs)
        return [
            self._beta_r[var] + self._beta_d[var] * eps
            for var in range(self._n)
        ]

    def value(self, var: int) -> DeltaRational:
        return DeltaRational(self._beta_r[var], self._beta_d[var])

    def lower_bound(self, var: int) -> Optional[DeltaRational]:
        """Currently asserted lower bound (None if unbounded below)."""
        return self._lower[var]

    def upper_bound(self, var: int) -> Optional[DeltaRational]:
        """Currently asserted upper bound (None if unbounded above)."""
        return self._upper[var]

    def lower_literal(self, var: int) -> int:
        """Literal id that asserted the current lower bound (or NO_LIT)."""
        return self._lower_lit[var]

    def upper_literal(self, var: int) -> int:
        """Literal id that asserted the current upper bound (or NO_LIT)."""
        return self._upper_lit[var]

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------

    def assignment_consistent(self) -> bool:
        """Check that beta satisfies all rows (invariant; for tests)."""
        for basic, row in enumerate(self._rows):
            if row is None:
                continue
            r, d = self._row_value(basic)
            if r != self._beta_r[basic] or d != self._beta_d[basic]:
                return False
        return True

    def bounds_satisfied(self) -> bool:
        """Check that beta satisfies all bounds (true right after check())."""
        for var in range(self._n):
            lo, up = self._lower[var], self._upper[var]
            if lo is not None and self._below_bound(var, lo):
                return False
            if up is not None and self._above_bound(var, up):
                return False
        return True

    def suspects_invariant_holds(self) -> bool:
        """Every violating basic variable is in the suspect set (for tests)."""
        for var in range(self._n):
            if not self._is_basic[var]:
                continue
            lo, up = self._lower[var], self._upper[var]
            violated = (lo is not None and self._below_bound(var, lo)) or (
                up is not None and self._above_bound(var, up)
            )
            if violated and var not in self._suspects:
                return False
        return True

    def dirty_invariant_holds(self) -> bool:
        """Every out-of-bounds *nonbasic* variable is marked dirty."""
        for var in range(self._n):
            if self._is_basic[var]:
                continue
            lo, up = self._lower[var], self._upper[var]
            violated = (lo is not None and self._below_bound(var, lo)) or (
                up is not None and self._above_bound(var, up)
            )
            if violated and var not in self._dirty:
                return False
        return True


_F0 = Fraction(0)
_F1 = Fraction(1)
