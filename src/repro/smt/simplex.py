"""General simplex for linear real arithmetic (Dutertre & de Moura, 2006).

This is the *certifying* theory engine of the SMT substrate: it decides
conjunctions of bounds over variables related by linear rows, with exact
``Fraction`` arithmetic and :class:`~repro.smt.rationals.DeltaRational`
bounds for strict inequalities.  The difference-logic engine
(:mod:`repro.smt.difflogic`) catches most scheduling conflicts eagerly; the
simplex handles the paper's non-unit-coefficient *stability* atoms
(``(1-a)*Lmin + a*Lmax <= b``) and certifies full assignments.

The solver state is backtrackable via a bound trail (:meth:`mark` /
:meth:`undo_to`); the tableau itself is never undone because pivoting is an
equivalence transformation and rows are definitional.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SolverError
from .rationals import DeltaRational, materialize_delta

NO_LIT = -1


class Simplex:
    """Incremental simplex over ``Q + Q*delta`` with conflict explanations."""

    def __init__(self) -> None:
        self._n = 0
        self._lower: List[Optional[DeltaRational]] = []
        self._upper: List[Optional[DeltaRational]] = []
        self._lower_lit: List[int] = []
        self._upper_lit: List[int] = []
        self._beta: List[DeltaRational] = []
        self._is_basic: List[bool] = []
        # For basic variables: row mapping nonbasic var -> coefficient.
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        # For nonbasic variables: set of basic variables whose row uses them.
        self._cols: Dict[int, set] = {}
        # Bound-change trail: (var, is_lower, old_bound, old_lit)
        self._trail: List[Tuple[int, bool, Optional[DeltaRational], int]] = []
        # Nonbasic variables whose beta may violate a freshly tightened
        # bound; repaired lazily at the start of check().
        self._dirty: set = set()
        # Basic variables whose beta or bounds changed since the last
        # check(): the only candidates for bound violations (avoids a full
        # O(n) scan per pivot iteration).  Invariant: every violating
        # basic variable is in this set.
        self._suspects: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh structural (nonbasic) variable."""
        idx = self._n
        self._n += 1
        self._lower.append(None)
        self._upper.append(None)
        self._lower_lit.append(NO_LIT)
        self._upper_lit.append(NO_LIT)
        self._beta.append(DeltaRational(0))
        self._is_basic.append(False)
        self._cols[idx] = set()
        return idx

    def add_row(self, coeffs: Dict[int, Fraction]) -> int:
        """Introduce a slack variable ``s = sum(coeffs)`` and return it.

        Any *basic* variable appearing in ``coeffs`` is substituted by its
        defining row so the new row mentions only nonbasic variables.
        """
        expanded: Dict[int, Fraction] = {}
        for var, coeff in coeffs.items():
            if coeff == 0:
                continue
            if self._is_basic[var]:
                for v2, c2 in self._rows[var].items():
                    expanded[v2] = expanded.get(v2, Fraction(0)) + coeff * c2
            else:
                expanded[var] = expanded.get(var, Fraction(0)) + coeff
        expanded = {v: c for v, c in expanded.items() if c != 0}
        s = self.new_var()
        self._is_basic[s] = True
        self._rows[s] = expanded
        for v in expanded:
            self._cols[v].add(s)
        self._beta[s] = self._row_value(s)
        return s

    def _row_value(self, basic: int) -> DeltaRational:
        total = DeltaRational(0)
        for v, c in self._rows[basic].items():
            total = total + self._beta[v] * c
        return total

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def mark(self) -> int:
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            var, is_lower, old_bound, old_lit = self._trail.pop()
            if is_lower:
                self._lower[var] = old_bound
                self._lower_lit[var] = old_lit
            else:
                self._upper[var] = old_bound
                self._upper_lit[var] = old_lit

    # ------------------------------------------------------------------
    # Bound assertion
    # ------------------------------------------------------------------

    def assert_lower(self, var: int, bound: DeltaRational, lit: int) -> Optional[List[int]]:
        """Assert ``var >= bound``; returns a conflict explanation or None."""
        upper = self._upper[var]
        if upper is not None and bound > upper:
            return self._pair_conflict(lit, self._upper_lit[var])
        current = self._lower[var]
        self._trail.append((var, True, current, self._lower_lit[var]))
        if current is None or bound > current:
            self._lower[var] = bound
            self._lower_lit[var] = lit
            if self._is_basic[var]:
                self._suspects.add(var)
            elif self._beta[var] < bound:
                self._dirty.add(var)
        return None

    def assert_upper(self, var: int, bound: DeltaRational, lit: int) -> Optional[List[int]]:
        """Assert ``var <= bound``; returns a conflict explanation or None."""
        lower = self._lower[var]
        if lower is not None and bound < lower:
            return self._pair_conflict(lit, self._lower_lit[var])
        current = self._upper[var]
        self._trail.append((var, False, current, self._upper_lit[var]))
        if current is None or bound < current:
            self._upper[var] = bound
            self._upper_lit[var] = lit
            if self._is_basic[var]:
                self._suspects.add(var)
            elif self._beta[var] > bound:
                self._dirty.add(var)
        return None

    @staticmethod
    def _pair_conflict(lit_a: int, lit_b: int) -> List[int]:
        return [l for l in (lit_a, lit_b) if l != NO_LIT]

    def _update(self, nonbasic: int, value: DeltaRational) -> None:
        delta = value - self._beta[nonbasic]
        self._beta[nonbasic] = value
        for basic in self._cols[nonbasic]:
            coeff = self._rows[basic][nonbasic]
            self._beta[basic] = self._beta[basic] + delta * coeff
            self._suspects.add(basic)

    # ------------------------------------------------------------------
    # Check (Bland's rule)
    # ------------------------------------------------------------------

    def check(self) -> Optional[List[int]]:
        """Restore all basic variables into their bounds.

        Returns None when the current bound set is satisfiable (``beta`` is
        then a model), otherwise a conflict explanation: the list of
        asserted-literal ids of an infeasible bound subset (Farkas row).

        Bound assertions are lazy: nonbasic variables whose value drifted
        outside their (possibly backtracked-and-retightened) bounds are
        repaired here first, then the classic Bland pivoting runs.
        """
        if self._dirty:
            for var in self._dirty:
                if self._is_basic[var]:
                    continue
                lo, up = self._lower[var], self._upper[var]
                if lo is not None and self._beta[var] < lo:
                    self._update(var, lo)
                elif up is not None and self._beta[var] > up:
                    self._update(var, up)
            self._dirty.clear()
        while True:
            # Bland's rule over the suspect set: the smallest-index
            # violating basic variable (every violating basic is a
            # suspect by the maintenance invariant).
            violating = -1
            below = False
            cleared = []
            for var in sorted(self._suspects):
                if not self._is_basic[var]:
                    cleared.append(var)
                    continue
                lo, up = self._lower[var], self._upper[var]
                if lo is not None and self._beta[var] < lo:
                    violating, below = var, True
                    break
                if up is not None and self._beta[var] > up:
                    violating, below = var, False
                    break
                cleared.append(var)
            for var in cleared:
                self._suspects.discard(var)
            if violating < 0:
                return None
            row = self._rows[violating]
            if below:
                target = self._lower[violating]
                pivot_var = -1
                for v in sorted(row):
                    c = row[v]
                    if c > 0 and self._can_increase(v):
                        pivot_var = v
                        break
                    if c < 0 and self._can_decrease(v):
                        pivot_var = v
                        break
                if pivot_var < 0:
                    return self._explain(violating, below=True)
            else:
                target = self._upper[violating]
                pivot_var = -1
                for v in sorted(row):
                    c = row[v]
                    if c < 0 and self._can_increase(v):
                        pivot_var = v
                        break
                    if c > 0 and self._can_decrease(v):
                        pivot_var = v
                        break
                if pivot_var < 0:
                    return self._explain(violating, below=False)
            assert target is not None
            self._pivot_and_update(violating, pivot_var, target)

    def _can_increase(self, var: int) -> bool:
        up = self._upper[var]
        return up is None or self._beta[var] < up

    def _can_decrease(self, var: int) -> bool:
        lo = self._lower[var]
        return lo is None or self._beta[var] > lo

    def _explain(self, basic: int, below: bool) -> List[int]:
        """Farkas conflict: the violated bound plus the blocking bounds."""
        lits = []
        if below:
            lits.append(self._lower_lit[basic])
            for v, c in self._rows[basic].items():
                lits.append(self._upper_lit[v] if c > 0 else self._lower_lit[v])
        else:
            lits.append(self._upper_lit[basic])
            for v, c in self._rows[basic].items():
                lits.append(self._lower_lit[v] if c > 0 else self._upper_lit[v])
        seen = set()
        out = []
        for l in lits:
            if l != NO_LIT and l not in seen:
                seen.add(l)
                out.append(l)
        return out

    def _pivot_and_update(self, basic: int, nonbasic: int, value: DeltaRational) -> None:
        """Swap ``basic``/``nonbasic`` and set the old basic var to ``value``."""
        row = self._rows.pop(basic)
        a = row[nonbasic]
        # Solve the row for `nonbasic`: nonbasic = basic/a - sum(others)/a.
        new_row: Dict[int, Fraction] = {basic: Fraction(1) / a}
        for v, c in row.items():
            if v != nonbasic:
                new_row[v] = -c / a
        # Update beta before rewiring (theta = change of nonbasic).
        theta = (value - self._beta[basic]) / a
        self._beta[basic] = value
        self._beta[nonbasic] = self._beta[nonbasic] + theta
        # Incrementally adjust every other basic row that uses `nonbasic`
        # (cheaper than recomputing whole row values after substitution).
        for b in self._cols[nonbasic]:
            if b != basic:
                self._beta[b] = self._beta[b] + theta * self._rows[b][nonbasic]
                self._suspects.add(b)
        # The entering variable may now violate its own bounds.
        self._suspects.add(nonbasic)
        # Rewire column index for the departing/incoming variables.
        for v in row:
            self._cols[v].discard(basic)
        self._is_basic[basic] = False
        self._is_basic[nonbasic] = True
        self._cols[basic] = set()
        self._rows[nonbasic] = new_row
        for v in new_row:
            self._cols[v].add(nonbasic)
        # Substitute `nonbasic` in every other row that used it.
        users = [b for b in self._cols.pop(nonbasic, set()) if b != nonbasic]
        self._cols[nonbasic] = set()
        for b in users:
            brow = self._rows[b]
            k = brow.pop(nonbasic)
            for v, c in new_row.items():
                nc = brow.get(v, Fraction(0)) + k * c
                if nc == 0:
                    brow.pop(v, None)
                    self._cols[v].discard(b)
                else:
                    brow[v] = nc
                    self._cols[v].add(b)
        # `basic` is now nonbasic: it appears in rows (at least new_row).
        self._cols[basic].add(nonbasic)
        for b in users:
            if basic in self._rows[b]:
                self._cols[basic].add(b)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------

    def model(self) -> List[Fraction]:
        """Concrete rational values for all variables (delta materialized)."""
        pairs = []
        for var in range(self._n):
            lo, up = self._lower[var], self._upper[var]
            beta = self._beta[var]
            if lo is not None:
                pairs.append((lo, beta))
            if up is not None:
                pairs.append((beta, up))
        eps = materialize_delta(pairs)
        return [b.real + b.delta * eps for b in self._beta]

    def value(self, var: int) -> DeltaRational:
        return self._beta[var]

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------

    def assignment_consistent(self) -> bool:
        """Check that beta satisfies all rows (invariant; for tests)."""
        for basic in self._rows:
            if self._row_value(basic) != self._beta[basic]:
                return False
        return True

    def bounds_satisfied(self) -> bool:
        """Check that beta satisfies all bounds (true right after check())."""
        for var in range(self._n):
            lo, up = self._lower[var], self._upper[var]
            if lo is not None and self._beta[var] < lo:
                return False
            if up is not None and self._beta[var] > up:
                return False
        return True
