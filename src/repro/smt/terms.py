"""Term language for the SMT solver: Booleans and linear real arithmetic.

This module provides a z3py-flavoured expression API::

    x, y = Real("x"), Real("y")
    a, b = Bool("a"), Bool("b")
    f = Or(a, And(b, x - y >= 2), x + 3 * y <= Fraction(7, 2))

Arithmetic terms are kept in *linear normal form* at construction time: a
:class:`LinExpr` is a mapping ``variable -> Fraction coefficient`` plus a
constant.  Comparisons build :class:`Atom` leaves normalized to
``sum(coeffs) <= rhs`` or ``< rhs`` (negations of atoms are handled by the
theory layer, not by separate atom objects).

Following z3py, ``==`` on arithmetic expressions builds a formula (an
``And`` of two inequalities); term objects hash by identity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from ..errors import SolverError

Number = Union[int, Fraction, float, str]


def _to_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise SolverError(f"cannot interpret {value!r} as a rational constant")


# ---------------------------------------------------------------------------
# Arithmetic layer
# ---------------------------------------------------------------------------


class RealVar:
    """A real-valued SMT variable, identified by name."""

    __slots__ = ("name",)
    _registry: Dict[str, "RealVar"] = {}

    def __new__(cls, name: str) -> "RealVar":
        existing = cls._registry.get(name)
        if existing is not None:
            return existing
        obj = object.__new__(cls)
        obj.name = name
        cls._registry[name] = obj
        return obj

    def __repr__(self) -> str:
        return f"RealVar({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coeff * var) + const`` over the reals."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[RealVar, Fraction] | None = None,
                 const: Number = 0):
        self.coeffs: Dict[RealVar, Fraction] = {
            v: Fraction(c) for v, c in (coeffs or {}).items() if c != 0
        }
        self.const: Fraction = _to_fraction(const)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def variable(var: RealVar) -> "LinExpr":
        return LinExpr({var: Fraction(1)})

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        return LinExpr({}, value)

    @staticmethod
    def coerce(value: "LinExpr | RealVar | Number") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, RealVar):
            return LinExpr.variable(value)
        return LinExpr.constant(value)

    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def variables(self) -> Tuple[RealVar, ...]:
        return tuple(self.coeffs)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.coerce(other) + (-self)

    def __mul__(self, other) -> "LinExpr":
        if isinstance(other, (LinExpr, RealVar)):
            other = LinExpr.coerce(other)
            if not other.is_constant() and not self.is_constant():
                raise SolverError("non-linear product of two variable expressions")
            if other.is_constant():
                k = other.const
                return LinExpr({v: c * k for v, c in self.coeffs.items()},
                               self.const * k)
            k = self.const
            return LinExpr({v: c * k for v, c in other.coeffs.items()},
                           other.const * k)
        k = _to_fraction(other)
        return LinExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "LinExpr":
        k = _to_fraction(other)
        if k == 0:
            raise ZeroDivisionError("division of linear expression by zero")
        return self * Fraction(1, 1) * (Fraction(1) / k)

    # -- comparisons build atoms/formulas ---------------------------------------

    def __le__(self, other) -> "BoolExpr":
        return Atom.build(self - LinExpr.coerce(other), strict=False)

    def __lt__(self, other) -> "BoolExpr":
        return Atom.build(self - LinExpr.coerce(other), strict=True)

    def __ge__(self, other) -> "BoolExpr":
        return Atom.build(LinExpr.coerce(other) - self, strict=False)

    def __gt__(self, other) -> "BoolExpr":
        return Atom.build(LinExpr.coerce(other) - self, strict=True)

    def __eq__(self, other):  # type: ignore[override]
        other = LinExpr.coerce(other)
        return And(self <= other, self >= other)

    def __ne__(self, other):  # type: ignore[override]
        other = LinExpr.coerce(other)
        return Or(self < other, self > other)

    __hash__ = None  # type: ignore[assignment]

    def evaluate(self, assignment: Mapping[RealVar, Fraction]) -> Fraction:
        """Evaluate under a total assignment of the free variables."""
        total = self.const
        for v, c in self.coeffs.items():
            total += c * assignment[v]
        return total

    def __repr__(self) -> str:
        parts = [f"{c}*{v.name}" for v, c in sorted(
            self.coeffs.items(), key=lambda it: it[0].name)]
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def Real(name: str) -> LinExpr:
    """Declare (or retrieve) a real variable as a linear expression."""
    return LinExpr.variable(RealVar(name))


def RealVal(value: Number) -> LinExpr:
    """A rational constant as a linear expression."""
    return LinExpr.constant(value)


# ---------------------------------------------------------------------------
# Boolean layer
# ---------------------------------------------------------------------------


class BoolExpr:
    """Base class for Boolean formulas.  Hash/eq are by identity (z3 style)."""

    __slots__ = ()

    def __and__(self, other) -> "BoolExpr":
        return And(self, other)

    def __or__(self, other) -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)


class BoolConst(BoolExpr):
    """Boolean constants ``TRUE_EXPR`` / ``FALSE_EXPR``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE_EXPR = BoolConst(True)
FALSE_EXPR = BoolConst(False)


def BoolVal(value: bool) -> BoolConst:
    return TRUE_EXPR if value else FALSE_EXPR


class BoolVar(BoolExpr):
    """A named propositional variable."""

    __slots__ = ("name",)
    _registry: Dict[str, "BoolVar"] = {}

    def __new__(cls, name: str) -> "BoolVar":
        existing = cls._registry.get(name)
        if existing is not None:
            return existing
        obj = object.__new__(cls)
        obj.name = name
        cls._registry[name] = obj
        return obj

    def __repr__(self) -> str:
        return self.name


def Bool(name: str) -> BoolVar:
    """Declare (or retrieve) a propositional variable."""
    return BoolVar(name)


class NotExpr(BoolExpr):
    __slots__ = ("arg",)

    def __init__(self, arg: BoolExpr):
        self.arg = arg

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


class AndExpr(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[BoolExpr, ...]):
        self.args = args

    def __repr__(self) -> str:
        return "(and " + " ".join(repr(a) for a in self.args) + ")"


class OrExpr(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[BoolExpr, ...]):
        self.args = args

    def __repr__(self) -> str:
        return "(or " + " ".join(repr(a) for a in self.args) + ")"


class Atom(BoolExpr):
    """A linear-arithmetic atom in normal form ``expr <= 0`` or ``expr < 0``.

    ``expr`` carries the constant, i.e. the atom is
    ``sum(c_i * x_i) (<= | <) -const``.
    """

    __slots__ = ("coeffs", "rhs", "strict")

    def __init__(self, coeffs: Tuple[Tuple[RealVar, Fraction], ...],
                 rhs: Fraction, strict: bool):
        self.coeffs = coeffs
        self.rhs = rhs
        self.strict = strict

    @staticmethod
    def build(diff: LinExpr, strict: bool) -> BoolExpr:
        """Build the atom ``diff <= 0`` (or ``< 0``), folding constants."""
        if diff.is_constant():
            if strict:
                return BoolVal(diff.const < 0)
            return BoolVal(diff.const <= 0)
        coeffs = tuple(sorted(diff.coeffs.items(), key=lambda it: it[0].name))
        return Atom(coeffs, -diff.const, strict)

    @property
    def key(self) -> Tuple:
        """Canonical identity for atom deduplication."""
        return (self.coeffs, self.rhs, self.strict)

    def evaluate(self, assignment: Mapping[RealVar, Fraction]) -> bool:
        total = Fraction(0)
        for v, c in self.coeffs:
            total += c * assignment[v]
        return total < self.rhs if self.strict else total <= self.rhs

    def __repr__(self) -> str:
        lhs = " + ".join(f"{c}*{v.name}" for v, c in self.coeffs)
        op = "<" if self.strict else "<="
        return f"({lhs} {op} {self.rhs})"


# ---------------------------------------------------------------------------
# Canonical literal serialization (cross-process clause sharing)
# ---------------------------------------------------------------------------
#
# Portfolio workers exchange learned clauses as plain tuples; a literal is
# either a named propositional variable or a normalized linear atom.  Both
# kinds are *interned* — ``BoolVar``/``RealVar`` by name, atoms by their
# canonical :attr:`Atom.key` in the CNF layer — so a serialized literal
# deserializes to the semantically identical term in any process, which is
# what makes clauses learned by one solver importable into another.
# Fractions travel as ``"num/den"`` strings (exact, hashable, picklable).


def serialize_literal(expr: "BoolExpr", negated: bool) -> Tuple:
    """A hashable, picklable encoding of a Boolean literal.

    Supports :class:`BoolVar` and :class:`Atom` leaves only — the stable,
    name-interned vocabulary that survives process boundaries.
    """
    if isinstance(expr, BoolVar):
        return ("b", expr.name, negated)
    if isinstance(expr, Atom):
        coeffs = tuple((v.name, str(c)) for v, c in expr.coeffs)
        return ("a", coeffs, str(expr.rhs), expr.strict, negated)
    raise SolverError(f"cannot serialize literal over {expr!r}")


def deserialize_literal(ser: Tuple) -> Tuple["BoolExpr", bool]:
    """Inverse of :func:`serialize_literal`: ``(expr, negated)``."""
    kind = ser[0]
    if kind == "b":
        _, name, negated = ser
        return BoolVar(name), negated
    if kind == "a":
        _, coeffs, rhs, strict, negated = ser
        atom = Atom(
            tuple((RealVar(name), Fraction(c)) for name, c in coeffs),
            Fraction(rhs),
            strict,
        )
        return atom, negated
    raise SolverError(f"unknown serialized literal kind {kind!r}")


# ---------------------------------------------------------------------------
# Formula constructors
# ---------------------------------------------------------------------------


def _flatten(args: Sequence, cls) -> Iterable[BoolExpr]:
    for a in args:
        if isinstance(a, (list, tuple)):
            yield from _flatten(a, cls)
        elif isinstance(a, cls):
            yield from a.args
        elif isinstance(a, bool):
            yield BoolVal(a)
        elif isinstance(a, BoolExpr):
            yield a
        else:
            raise SolverError(f"expected a Boolean expression, got {a!r}")


def And(*args) -> BoolExpr:
    """N-ary conjunction with constant folding and flattening."""
    flat = []
    for a in _flatten(args, AndExpr):
        if isinstance(a, BoolConst):
            if not a.value:
                return FALSE_EXPR
            continue
        flat.append(a)
    if not flat:
        return TRUE_EXPR
    if len(flat) == 1:
        return flat[0]
    return AndExpr(tuple(flat))


def Or(*args) -> BoolExpr:
    """N-ary disjunction with constant folding and flattening."""
    flat = []
    for a in _flatten(args, OrExpr):
        if isinstance(a, BoolConst):
            if a.value:
                return TRUE_EXPR
            continue
        flat.append(a)
    if not flat:
        return FALSE_EXPR
    if len(flat) == 1:
        return flat[0]
    return OrExpr(tuple(flat))


def Not(arg: BoolExpr) -> BoolExpr:
    if isinstance(arg, bool):
        arg = BoolVal(arg)
    if isinstance(arg, BoolConst):
        return BoolVal(not arg.value)
    if isinstance(arg, NotExpr):
        return arg.arg
    return NotExpr(arg)


def Implies(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    return Or(Not(a), b)


def Iff(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    return And(Or(Not(a), b), Or(a, Not(b)))


def Ite(cond: BoolExpr, then_b: BoolExpr, else_b: BoolExpr) -> BoolExpr:
    """Boolean if-then-else."""
    return And(Or(Not(cond), then_b), Or(cond, else_b))


def ExactlyOne(*args) -> BoolExpr:
    """Exactly one of the arguments holds (pairwise encoding)."""
    items = []
    for a in args:
        if isinstance(a, (list, tuple)):
            items.extend(a)
        else:
            items.append(a)
    if not items:
        return FALSE_EXPR
    at_least = Or(*items)
    at_most = And(*[
        Or(Not(items[i]), Not(items[j]))
        for i in range(len(items))
        for j in range(i + 1, len(items))
    ])
    return And(at_least, at_most)


def Sum(*args) -> LinExpr:
    """Sum of linear expressions / constants."""
    total = LinExpr.constant(0)
    for a in args:
        if isinstance(a, (list, tuple)):
            for b in a:
                total = total + LinExpr.coerce(b)
        else:
            total = total + LinExpr.coerce(a)
    return total
