"""From-scratch SMT solver for QF_LRA (DESIGN.md S1).

A z3py-flavoured API (``Real``, ``Bool``, ``And``/``Or``/``Not``,
``Solver``) over a DPLL(T) engine: CDCL SAT core (:mod:`repro.sat`), an
eager incremental difference-logic theory, and an exact rational simplex
(Dutertre & de Moura) for general linear atoms and model certification.
"""

from .difflogic import DifferenceLogic
from .rationals import DeltaRational, materialize_delta
from .simplex import Simplex
from .optimize import OptimizeResult, minimize
from .solver import CheckResult, Model, Solver, SolverEngine, sat, unknown, unsat
from .terms import (
    And,
    Atom,
    Bool,
    BoolExpr,
    BoolVal,
    BoolVar,
    ExactlyOne,
    FALSE_EXPR,
    Iff,
    Implies,
    Ite,
    LinExpr,
    Not,
    Or,
    Real,
    RealVal,
    RealVar,
    Sum,
    TRUE_EXPR,
)
from .theory import LraTheory

__all__ = [
    "And",
    "Atom",
    "Bool",
    "BoolExpr",
    "BoolVal",
    "BoolVar",
    "CheckResult",
    "DeltaRational",
    "DifferenceLogic",
    "ExactlyOne",
    "FALSE_EXPR",
    "Iff",
    "Implies",
    "Ite",
    "LinExpr",
    "LraTheory",
    "Model",
    "Not",
    "OptimizeResult",
    "Or",
    "Real",
    "RealVal",
    "RealVar",
    "Simplex",
    "Solver",
    "SolverEngine",
    "Sum",
    "TRUE_EXPR",
    "materialize_delta",
    "minimize",
    "sat",
    "unknown",
    "unsat",
]
