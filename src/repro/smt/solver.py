"""The user-facing SMT solver: z3py-flavoured ``Solver`` and ``Model``.

Usage::

    from repro.smt import Solver, Real, Bool, Or, And, sat

    x, y = Real("x"), Real("y")
    s = Solver()
    s.add(x - y >= 2, Or(Bool("a"), x + y <= 10))
    if s.check() == sat:
        m = s.model()
        print(m[x], m[y])

The solver is *incremental*: constraints may be added between ``check()``
calls (learned clauses and theory state carry over), ``push()``/``pop()``
delimit retractable assertion scopes, and ``check()`` accepts assumption
literals that hold for that one call only::

    s.push()
    s.add(x <= 0)
    s.check()                  # under the pushed scope
    s.pop()                    # retract it; learned clauses survive
    s.check(Bool("a"), x >= 5) # one-shot assumptions

Scopes are realized with activation literals (the MiniSat idiom): each
``push()`` allocates a fresh selector, assertions inside the scope are
guarded by it, ``check()`` assumes every live selector, and ``pop()``
permanently asserts its negation so the scope's clauses become vacuous
while everything learned from them remains valid.
"""

from __future__ import annotations

import itertools

from collections import deque
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SolverError
from ..sat.literals import TRUE
from ..sat.solver import SatSolver
from .cnf import CnfConverter
from .terms import (
    Atom,
    BoolConst,
    BoolExpr,
    BoolVar,
    AndExpr,
    LinExpr,
    Not,
    NotExpr,
    Or,
    OrExpr,
    RealVar,
)
from .theory import LraTheory

#: Fresh activation-variable names across all Solver instances (BoolVar
#: interns by name globally, so scope selectors must never collide).
_SCOPE_IDS = itertools.count()

#: Statistics keys reported per ``check()`` (monotone counters of the SAT
#: core whose per-call delta is meaningful).
_CHECK_STAT_KEYS = (
    "conflicts",
    "decisions",
    "propagations",
    "theory_propagations",
    "restarts",
)

#: Per-check statistics of every Solver in this process, in check() order.
#: The benchmark harness (:mod:`repro.eval.bench`) drains this to build a
#: solve trajectory without threading a recorder through the experiment
#: runners.  A bounded ring buffer: processes that never drain (services,
#: portfolio workers) keep only the most recent entries instead of leaking
#: one dict per check() forever.
_CHECK_STATS_CAP = 10_000
_GLOBAL_CHECK_STATS: "deque[Dict[str, int]]" = deque(maxlen=_CHECK_STATS_CAP)


def drain_global_check_stats() -> List[Dict[str, int]]:
    """Return and clear the per-check stats accumulated in this process."""
    out = list(_GLOBAL_CHECK_STATS)
    _GLOBAL_CHECK_STATS.clear()
    return out


class CheckResult:
    """Tri-state result mirroring z3's ``sat``/``unsat``/``unknown``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __bool__(self) -> bool:
        return self.name == "sat"


sat = CheckResult("sat")
unsat = CheckResult("unsat")
unknown = CheckResult("unknown")


class Model:
    """A satisfying assignment for Booleans and reals."""

    def __init__(self, bools: Dict[BoolVar, bool], reals: Dict[RealVar, Fraction]):
        self._bools = bools
        self._reals = reals

    def value_of(self, var: RealVar) -> Fraction:
        return self._reals.get(var, Fraction(0))

    def __getitem__(self, term):
        if isinstance(term, LinExpr):
            total = term.const
            for v, c in term.coeffs.items():
                total += c * self.value_of(v)
            return total
        if isinstance(term, RealVar):
            return self.value_of(term)
        if isinstance(term, BoolVar):
            return self._bools.get(term, False)
        if isinstance(term, BoolExpr):
            return self.eval_bool(term)
        raise SolverError(f"cannot evaluate {term!r} in a model")

    def eval_bool(self, expr: BoolExpr) -> bool:
        """Evaluate an arbitrary Boolean formula under this model."""
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, BoolVar):
            return self._bools.get(expr, False)
        if isinstance(expr, NotExpr):
            return not self.eval_bool(expr.arg)
        if isinstance(expr, AndExpr):
            return all(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, OrExpr):
            return any(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, Atom):
            return expr.evaluate({v: self.value_of(v) for v, _ in expr.coeffs})
        raise SolverError(f"cannot evaluate {expr!r}")

    @property
    def reals(self) -> Dict[RealVar, Fraction]:
        return dict(self._reals)

    @property
    def bools(self) -> Dict[BoolVar, bool]:
        return dict(self._bools)


class Solver:
    """Incremental DPLL(T) solver for QF_LRA + Booleans.

    ``theory_propagation`` (default on) lets the theory assign implied
    atoms instead of branching on them — the ``theory_propagations``
    statistic counts them; turn it off to A/B the search behaviour (the
    equivalence tests do).  ``float_prefilter`` answers clear-cut simplex
    bound comparisons in floating point, falling back to exact rational
    arithmetic on near-ties (opt-in; exact is the default).
    """

    def __init__(self, theory_propagation: bool = True,
                 float_prefilter: bool = False) -> None:
        self._theory = LraTheory(propagation=theory_propagation,
                                 float_prefilter=float_prefilter)
        self._sat = SatSolver(self._theory)
        self._cnf = CnfConverter(self._sat, self._theory)
        self._assertions: list[BoolExpr] = []
        self._model: Optional[Model] = None
        # Scope stack: (activation var, watermark into self._assertions).
        self._scopes: List[Tuple[BoolVar, int]] = []
        self._last_check_stats: Dict[str, int] = {}

    @property
    def assertions(self) -> list[BoolExpr]:
        return list(self._assertions)

    @property
    def statistics(self) -> dict:
        return self._sat.statistics

    @property
    def last_check_statistics(self) -> Dict[str, int]:
        """Search-effort counters of the most recent ``check()`` alone."""
        return dict(self._last_check_stats)

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    def push(self) -> None:
        """Open a retractable assertion scope."""
        act = BoolVar(f"__scope!{next(_SCOPE_IDS)}")
        self._scopes.append((act, len(self._assertions)))

    def pop(self, n: int = 1) -> None:
        """Retract the ``n`` innermost scopes and their assertions.

        The scope's clauses stay in the SAT core but are disabled for good
        by asserting the negated activation literal, so clauses *learned*
        while the scope was live remain usable afterwards.
        """
        if n < 0 or n > len(self._scopes):
            raise SolverError(
                f"cannot pop {n} scope(s); {len(self._scopes)} pushed"
            )
        for _ in range(n):
            act, watermark = self._scopes.pop()
            del self._assertions[watermark:]
            self._cnf.assert_formula(Not(act))
        self._model = None

    def add(self, *exprs: BoolExpr | bool | Iterable) -> None:
        """Assert one or more formulas (lists/tuples are flattened).

        Inside a ``push()`` scope the assertion is guarded by the scope's
        activation literal so a later ``pop()`` can retract it.
        """
        for expr in exprs:
            if isinstance(expr, (list, tuple)):
                self.add(*expr)
                continue
            if isinstance(expr, bool):
                expr = BoolConst(expr)
            if not isinstance(expr, BoolExpr):
                raise SolverError(f"cannot assert non-Boolean {expr!r}")
            self._assertions.append(expr)
            if self._scopes:
                act, _ = self._scopes[-1]
                self._cnf.assert_formula(Or(Not(act), expr))
            else:
                self._cnf.assert_formula(expr)

    def check(self, *assumptions: BoolExpr | bool | Iterable) -> CheckResult:
        """Decide satisfiability of the asserted formulas.

        Optional ``assumptions`` are formulas taken to hold for this call
        only (they are internalized once, then passed to the SAT core as
        assumption literals — nothing to retract afterwards).
        """
        self._model = None
        lits = [self._cnf.literal_for(act) for act, _ in self._scopes]
        lits.extend(self._assumption_literals(assumptions))
        before = self._sat.statistics
        solved = self._sat.solve(lits)
        after = self._sat.statistics
        self._last_check_stats = {
            key: after.get(key, 0) - before.get(key, 0)
            for key in _CHECK_STAT_KEYS
        }
        _GLOBAL_CHECK_STATS.append(dict(self._last_check_stats))
        if solved:
            bools = {
                bv: self._sat.model_value(satvar)
                for bv, satvar in self._cnf.bool_vars.items()
            }
            self._model = Model(bools, self._theory.model_reals)
            return sat
        return unsat

    def _assumption_literals(self, assumptions) -> List[int]:
        out: List[int] = []
        for a in assumptions:
            if isinstance(a, (list, tuple)):
                out.extend(self._assumption_literals(a))
                continue
            if isinstance(a, bool):
                a = BoolConst(a)
            if not isinstance(a, BoolExpr):
                raise SolverError(f"cannot assume non-Boolean {a!r}")
            out.append(self._cnf.literal_for(a))
        return out

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model is only available after a sat check()")
        return self._model
