"""The native DPLL(T) engine: z3py-flavoured ``SolverEngine`` and ``Model``.

The *public* solving surface is :class:`repro.api.Session` (pluggable
backends, rich outcomes, first-class unsat cores — see ``docs/api.md``);
this module is the engine behind its native backend.  The legacy name
``Solver`` remains as a warn-once deprecation shim.

Usage::

    from repro.smt import Solver, Real, Bool, Or, And, sat

    x, y = Real("x"), Real("y")
    s = Solver()
    s.add(x - y >= 2, Or(Bool("a"), x + y <= 10))
    if s.check() == sat:
        m = s.model()
        print(m[x], m[y])

The solver is *incremental*: constraints may be added between ``check()``
calls (learned clauses and theory state carry over), ``push()``/``pop()``
delimit retractable assertion scopes, and ``check()`` accepts assumption
literals that hold for that one call only::

    s.push()
    s.add(x <= 0)
    s.check()                  # under the pushed scope
    s.pop()                    # retract it; learned clauses survive
    s.check(Bool("a"), x >= 5) # one-shot assumptions

Scopes are realized with activation literals (the MiniSat idiom): each
``push()`` allocates a fresh selector, assertions inside the scope are
guarded by it, ``check()`` assumes every live selector, and ``pop()``
permanently asserts its negation so the scope's clauses become vacuous
while everything learned from them remains valid.
"""

from __future__ import annotations

import itertools
import warnings

from collections import deque
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SolverError
from ..sat.literals import is_positive, neg, var_of
from ..sat.solver import SatSolver
from .cnf import CnfConverter
from .terms import (
    Atom,
    BoolConst,
    BoolExpr,
    BoolVar,
    AndExpr,
    LinExpr,
    Not,
    NotExpr,
    Or,
    OrExpr,
    RealVar,
    deserialize_literal,
    serialize_literal,
)
from .theory import LraTheory

#: Fresh activation-variable names across all Solver instances (BoolVar
#: interns by name globally, so scope selectors must never collide).
_SCOPE_IDS = itertools.count()

#: Statistics keys reported per ``check()`` (monotone counters of the SAT
#: core whose per-call delta is meaningful).
_CHECK_STAT_KEYS = (
    "conflicts",
    "decisions",
    "propagations",
    "theory_propagations",
    "dl_propagations",
    "dl_explanation_lits",
    "restarts",
)

#: Per-check statistics of every Solver in this process, in check() order.
#: The benchmark harness (:mod:`repro.eval.bench`) drains this to build a
#: solve trajectory without threading a recorder through the experiment
#: runners.  A bounded ring buffer: processes that never drain (services,
#: portfolio workers) keep only the most recent entries instead of leaking
#: one dict per check() forever.
_CHECK_STATS_CAP = 10_000
_GLOBAL_CHECK_STATS: "deque[Dict[str, object]]" = deque(maxlen=_CHECK_STATS_CAP)


def drain_global_check_stats() -> List[Dict[str, object]]:
    """Return and clear the per-check stats accumulated in this process.

    Besides the monotone counters, every entry carries a ``"backend"``
    tag naming the engine that performed the check, so trajectories can
    attribute work per backend.
    """
    out = list(_GLOBAL_CHECK_STATS)
    _GLOBAL_CHECK_STATS.clear()
    return out


class CheckResult:
    """Tri-state result mirroring z3's ``sat``/``unsat``/``unknown``.

    Compares equal to (and hashes like) the plain strings ``"sat"`` /
    ``"unsat"`` / ``"unknown"``, so reporting code can mix the two freely
    (``outcome.status == "unsat"``, ``{"sat": ...}[result]``) without
    ``str(...)`` round-trips — and results survive pickling across process
    boundaries without breaking identity-based comparisons.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __bool__(self) -> bool:
        return self.name == "sat"

    def __eq__(self, other) -> bool:
        if isinstance(other, CheckResult):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self) -> int:
        return hash(self.name)

    def __reduce__(self):
        return (CheckResult, (self.name,))


sat = CheckResult("sat")
unsat = CheckResult("unsat")
unknown = CheckResult("unknown")


class Model:
    """A satisfying assignment for Booleans and reals."""

    def __init__(self, bools: Dict[BoolVar, bool], reals: Dict[RealVar, Fraction]):
        self._bools = bools
        self._reals = reals

    def value_of(self, var: RealVar) -> Fraction:
        return self._reals.get(var, Fraction(0))

    def __getitem__(self, term):
        if isinstance(term, LinExpr):
            total = term.const
            for v, c in term.coeffs.items():
                total += c * self.value_of(v)
            return total
        if isinstance(term, RealVar):
            return self.value_of(term)
        if isinstance(term, BoolVar):
            return self._bools.get(term, False)
        if isinstance(term, BoolExpr):
            return self.eval_bool(term)
        raise SolverError(f"cannot evaluate {term!r} in a model")

    def eval_bool(self, expr: BoolExpr) -> bool:
        """Evaluate an arbitrary Boolean formula under this model."""
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, BoolVar):
            return self._bools.get(expr, False)
        if isinstance(expr, NotExpr):
            return not self.eval_bool(expr.arg)
        if isinstance(expr, AndExpr):
            return all(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, OrExpr):
            return any(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, Atom):
            return expr.evaluate({v: self.value_of(v) for v, _ in expr.coeffs})
        raise SolverError(f"cannot evaluate {expr!r}")

    @property
    def reals(self) -> Dict[RealVar, Fraction]:
        return dict(self._reals)

    @property
    def bools(self) -> Dict[BoolVar, bool]:
        return dict(self._bools)


class SolverEngine:
    """Incremental DPLL(T) solver for QF_LRA + Booleans.

    This is the *native engine* behind the public session API
    (:class:`repro.api.Session` with the ``"native"`` backend); the
    legacy entry point :class:`Solver` is a deprecated alias.

    ``theory_propagation`` (default on) lets the theory assign implied
    atoms instead of branching on them — the ``theory_propagations``
    statistic counts them; turn it off to A/B the search behaviour (the
    equivalence tests do).  ``dl_propagation`` (default on, subordinate
    to ``theory_propagation``) additionally derives implications through
    *chains* of difference constraints (Cotton & Maler's SSSP pass over
    the difference-logic graph) with multi-literal path explanations —
    counted by ``dl_propagations`` / ``dl_explanation_lits``;
    ``dl_effort`` caps the per-edge shortest-path work (heap pops per
    direction).  ``float_prefilter`` answers clear-cut simplex bound
    comparisons in floating point, falling back to exact rational
    arithmetic on near-ties (opt-in; exact is the default).

    ``backend_name`` tags this engine's entries in the global per-check
    statistics stream so benchmark trajectories can attribute work per
    backend (see :mod:`repro.eval.bench`).

    ``on_restart`` (also assignable after construction) is called with
    the engine at every SAT-core restart boundary inside ``check()`` —
    the trail is backjumped to the assumption level, so
    :meth:`export_learned_clauses` and :meth:`export_unit_clauses` are
    safe — letting portfolio workers flush knowledge mid-check instead
    of only after a check returns.  ``max_conflicts`` bounds the
    conflicts any single ``check()`` may spend: on exhaustion the check
    answers ``unknown`` (deterministically, after one final
    ``on_restart`` flush).  :meth:`interrupt` aborts a running check the
    same way from another thread.
    """

    #: Statistics-stream tag; backends override it per instance.
    backend_name = "native"

    def __init__(self, theory_propagation: bool = True,
                 float_prefilter: bool = False,
                 dl_propagation: bool = True,
                 dl_effort: Optional[int] = None,
                 on_restart=None,
                 max_conflicts: Optional[int] = None) -> None:
        self._theory = LraTheory(propagation=theory_propagation,
                                 float_prefilter=float_prefilter,
                                 dl_propagation=dl_propagation,
                                 dl_effort=dl_effort)
        self._sat = SatSolver(self._theory)
        self._cnf = CnfConverter(self._sat, self._theory)
        self._assertions: list[BoolExpr] = []
        self._model: Optional[Model] = None
        # Scope stack: (activation var, watermark into self._assertions).
        self._scopes: List[Tuple[BoolVar, int]] = []
        self._last_check_stats: Dict[str, int] = {}
        # Unsat-core state of the most recent check(), if it failed under
        # assumptions: the scope literals it ran under, the literal ->
        # assumption-expression map, the raw (un-minimized) core literals,
        # and the lazily computed deletion-minimized core.
        self._core_scope_lits: Optional[List[int]] = None
        self._core_by_lit: Dict[int, BoolExpr] = {}
        self._raw_core_lits: List[int] = []
        self._min_core_lits: Optional[List[int]] = None
        self._core_checks = 0
        self._clauses_imported = 0
        #: Mid-check export hook: called with this engine at every SAT
        #: restart (and once on a budget/interrupt abort).
        self.on_restart = on_restart
        #: Conflict budget per check(); None = unbounded.
        self.max_conflicts = max_conflicts
        self._sat.on_restart = self._fire_restart

    def _fire_restart(self, _sat: SatSolver) -> None:
        callback = self.on_restart
        if callback is not None:
            callback(self)

    def interrupt(self) -> None:
        """Abort a running :meth:`check` at its next restart-safe point
        (the check then answers ``unknown``).  Thread-safe."""
        self._sat.interrupt()

    @property
    def assertions(self) -> list[BoolExpr]:
        return list(self._assertions)

    @property
    def statistics(self) -> dict:
        stats = self._sat.statistics
        stats["clauses_imported"] = self._clauses_imported
        stats["dl_propagations"] = self._theory.dl_propagations
        stats["dl_explanation_lits"] = self._theory.dl_explanation_lits
        return stats

    @property
    def last_check_statistics(self) -> Dict[str, int]:
        """Search-effort counters of the most recent ``check()`` alone."""
        return dict(self._last_check_stats)

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    def push(self) -> None:
        """Open a retractable assertion scope."""
        act = BoolVar(f"__scope!{next(_SCOPE_IDS)}")
        self._scopes.append((act, len(self._assertions)))

    def pop(self, n: int = 1) -> None:
        """Retract the ``n`` innermost scopes and their assertions.

        The scope's clauses stay in the SAT core but are disabled for good
        by asserting the negated activation literal, so clauses *learned*
        while the scope was live remain usable afterwards.
        """
        if n < 0 or n > len(self._scopes):
            raise SolverError(
                f"cannot pop {n} scope(s); {len(self._scopes)} pushed"
            )
        for _ in range(n):
            act, watermark = self._scopes.pop()
            del self._assertions[watermark:]
            self._cnf.assert_formula(Not(act))
        self._model = None

    def add(self, *exprs: BoolExpr | bool | Iterable) -> None:
        """Assert one or more formulas (lists/tuples are flattened).

        Inside a ``push()`` scope the assertion is guarded by the scope's
        activation literal so a later ``pop()`` can retract it.
        """
        for expr in exprs:
            if isinstance(expr, (list, tuple)):
                self.add(*expr)
                continue
            if isinstance(expr, bool):
                expr = BoolConst(expr)
            if not isinstance(expr, BoolExpr):
                raise SolverError(f"cannot assert non-Boolean {expr!r}")
            self._assertions.append(expr)
            if self._scopes:
                act, _ = self._scopes[-1]
                self._cnf.assert_formula(Or(Not(act), expr))
            else:
                self._cnf.assert_formula(expr)

    def check(self, *assumptions: BoolExpr | bool | Iterable) -> CheckResult:
        """Decide satisfiability of the asserted formulas.

        Optional ``assumptions`` are formulas taken to hold for this call
        only (they are internalized once, then passed to the SAT core as
        assumption literals — nothing to retract afterwards).  When the
        answer is unsat *because of* the assumptions, :meth:`unsat_core`
        returns the responsible subset.  With ``max_conflicts`` set (or
        after :meth:`interrupt`) the answer may be ``unknown``: the
        budget ran out before a verdict, and the solver remains usable.
        """
        self._model = None
        self._core_scope_lits = None
        self._core_by_lit = {}
        self._raw_core_lits = []
        self._min_core_lits = None
        scope_lits = [self._cnf.literal_for(act) for act, _ in self._scopes]
        by_lit: Dict[int, BoolExpr] = {}
        self._collect_assumptions(assumptions, by_lit)
        lits = scope_lits + list(by_lit)
        before = self.statistics
        solved = self._sat.solve(lits, max_conflicts=self.max_conflicts)
        after = self.statistics
        self._last_check_stats = {
            key: after.get(key, 0) - before.get(key, 0)
            for key in _CHECK_STAT_KEYS
        }
        entry: Dict[str, object] = dict(self._last_check_stats)
        entry["backend"] = self.backend_name
        _GLOBAL_CHECK_STATS.append(entry)  # type: ignore[arg-type]
        if solved is None:
            # Budget/interrupt abort: no verdict, no model, no core.
            return unknown
        if solved:
            bools = {
                bv: self._sat.model_value(satvar)
                for bv, satvar in self._cnf.bool_vars.items()
            }
            self._model = Model(bools, self._theory.model_reals)
            return sat
        self._core_scope_lits = scope_lits
        self._core_by_lit = by_lit
        # Scope activation literals are implementation detail: the public
        # core ranges over the caller's assumptions only.
        self._raw_core_lits = [
            l for l in self._sat.failed_assumptions if l in by_lit
        ]
        return unsat

    def _collect_assumptions(self, assumptions, by_lit: Dict[int, BoolExpr]) -> None:
        for a in assumptions:
            if isinstance(a, (list, tuple)):
                self._collect_assumptions(a, by_lit)
                continue
            if isinstance(a, bool):
                a = BoolConst(a)
            if not isinstance(a, BoolExpr):
                raise SolverError(f"cannot assume non-Boolean {a!r}")
            by_lit.setdefault(self._cnf.literal_for(a), a)

    # ------------------------------------------------------------------
    # Unsat cores over assumptions
    # ------------------------------------------------------------------

    @property
    def core_minimization_checks(self) -> int:
        """Extra SAT-core solves spent on deletion-minimizing cores."""
        return self._core_checks

    def unsat_core(self, minimize: bool = True) -> List[BoolExpr]:
        """The failed assumptions of the most recent unsat ``check()``.

        Returns a subset of that check's assumption formulas which is
        already unsatisfiable together with the asserted formulas.  With
        ``minimize=True`` (default) the core is *deletion-minimized*:
        assumption literals are dropped one at a time and kept out
        whenever the remainder is still unsat, so no single removal can
        shrink the result further.  Minimization re-solves under the same
        scope context as the failing check and is cached; call this
        before further ``add()``/``push()``/``pop()`` mutations.

        An empty core means the assertions are unsat regardless of the
        assumptions.
        """
        if self._core_scope_lits is None:
            raise SolverError(
                "unsat core is only available after an unsat check()"
            )
        if not minimize:
            return [self._core_by_lit[l] for l in self._raw_core_lits]
        if self._min_core_lits is None:
            self._min_core_lits = self._deletion_minimize(
                self._raw_core_lits, self._core_scope_lits
            )
        return [self._core_by_lit[l] for l in self._min_core_lits]

    def _deletion_minimize(
        self, core: List[int], scope_lits: List[int]
    ) -> List[int]:
        """Drop-one deletion minimization of an assumption core.

        Each unsat probe replaces the core with the probe's own failed
        assumptions (never larger than the trial set), so one pass yields
        a core where every literal is necessary.
        """
        core = list(core)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1:]
            self._core_checks += 1
            if self._sat.solve(scope_lits + trial):
                i += 1  # core[i] is necessary
            else:
                kept = set(trial)
                core = [
                    l for l in self._sat.failed_assumptions if l in kept
                ]
        return core

    # ------------------------------------------------------------------
    # Learned-clause exchange (portfolio knowledge sharing)
    # ------------------------------------------------------------------

    @property
    def clauses_imported(self) -> int:
        """Clauses installed through :meth:`import_clauses` so far."""
        return self._clauses_imported

    def export_learned_clauses(
        self,
        max_size: int = 8,
        max_lbd: int = 8,
        max_count: int = 256,
        vocabulary=None,
    ):
        """Learned clauses serialized over the stable term vocabulary.

        A clause is exportable when every literal's SAT variable maps back
        to an interned :class:`~repro.smt.terms.BoolVar` or
        :class:`~repro.smt.terms.Atom` (Tseitin definitions and scope
        selectors never export) and, when ``vocabulary`` is given, every
        such term passes it.  Candidates are capped by clause ``max_size``
        and learning-time ``max_lbd``, ranked (LBD, size) ascending, and
        truncated to ``max_count``.  Returns a list of clauses, each a
        tuple of serialized literals (see
        :func:`repro.smt.terms.serialize_literal`).
        """
        ranked = []
        for clause in self._sat.learned_clauses():
            lits = clause.lits
            if len(lits) > max_size or clause.lbd > max_lbd:
                continue
            serialized = []
            for l in lits:
                origin = self._cnf.origin_of(var_of(l))
                if origin is None or (
                    vocabulary is not None and not vocabulary(origin)
                ):
                    serialized = None
                    break
                serialized.append(
                    serialize_literal(origin, negated=not is_positive(l))
                )
            if serialized:
                ranked.append((clause.lbd, len(lits), tuple(serialized)))
        ranked.sort(key=lambda t: (t[0], t[1]))
        return [ser for _, _, ser in ranked[:max_count]]

    def export_unit_clauses(self, max_count: int = 256, vocabulary=None):
        """Root-level facts serialized as unit clauses.

        Unit learned clauses are asserted straight onto the SAT trail at
        decision level 0 and never stored in the learned-clause database,
        so :meth:`export_learned_clauses` cannot see them — yet they are
        the strongest facts a worker derives.  Every level-0 literal is
        entailed by the asserted formulas alone (assumptions live at
        decision levels >= 1), so exporting them follows exactly the
        sharing rules of multi-literal clauses.  Filtering mirrors
        :meth:`export_learned_clauses`: only literals whose SAT variable
        maps back to an interned term that passes ``vocabulary`` export.
        Returns a list of 1-tuples of serialized literals, importable by
        :meth:`import_clauses`.  Safe to call mid-check from
        ``on_restart``.
        """
        units = []
        for l in self._sat.root_literals():
            origin = self._cnf.origin_of(var_of(l))
            if origin is None or (
                vocabulary is not None and not vocabulary(origin)
            ):
                continue
            units.append(
                (serialize_literal(origin, negated=not is_positive(l)),)
            )
            if len(units) >= max_count:
                break
        return units

    def import_clauses(self, clauses, pad: Iterable[BoolExpr] = ()) -> int:
        """Install serialized clauses (weakened by the ``pad`` literals).

        Each clause's literals are deserialized through the interning
        layer — atoms are registered with the theory on first sight — and
        the clause ``C or pad[0] or ...`` is added at the root level.
        ``pad`` carries the *relaxation literals* required when the
        exporting solver ran under a stricter route restriction than this
        one (see ``docs/perf.md``, portfolio sharing).  Returns the number
        of clauses installed.  Must be called between checks (the solver
        is at decision level 0 then).
        """
        pad_lits = [self._cnf.literal_for(e) for e in pad]
        count = 0
        for clause in clauses:
            lits = []
            for ser in clause:
                expr, negated = deserialize_literal(ser)
                lit = self._cnf.literal_for(expr)
                lits.append(neg(lit) if negated else lit)
            self._sat.add_clause(lits + pad_lits)
            count += 1
        self._clauses_imported += count
        return count

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model is only available after a sat check()")
        return self._model


#: One-shot deprecation latch for the legacy ``Solver`` entry point.
_SOLVER_DEPRECATION_WARNED = False


class Solver(SolverEngine):
    """Deprecated alias of :class:`SolverEngine`.

    The public solving surface is :class:`repro.api.Session`; this name
    stays importable for existing code and warns once per process.
    """

    def __init__(self, *args, **kwargs) -> None:
        global _SOLVER_DEPRECATION_WARNED
        if not _SOLVER_DEPRECATION_WARNED:
            _SOLVER_DEPRECATION_WARNED = True
            warnings.warn(
                "repro.smt.Solver is deprecated; use repro.api.Session "
                "(native backend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        super().__init__(*args, **kwargs)
