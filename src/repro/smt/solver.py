"""The user-facing SMT solver: z3py-flavoured ``Solver`` and ``Model``.

Usage::

    from repro.smt import Solver, Real, Bool, Or, And, sat

    x, y = Real("x"), Real("y")
    s = Solver()
    s.add(x - y >= 2, Or(Bool("a"), x + y <= 10))
    if s.check() == sat:
        m = s.model()
        print(m[x], m[y])
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional

from ..errors import SolverError
from ..sat.literals import TRUE
from ..sat.solver import SatSolver
from .cnf import CnfConverter
from .terms import (
    Atom,
    BoolConst,
    BoolExpr,
    BoolVar,
    AndExpr,
    LinExpr,
    NotExpr,
    OrExpr,
    RealVar,
)
from .theory import LraTheory


class CheckResult:
    """Tri-state result mirroring z3's ``sat``/``unsat``/``unknown``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __bool__(self) -> bool:
        return self.name == "sat"


sat = CheckResult("sat")
unsat = CheckResult("unsat")
unknown = CheckResult("unknown")


class Model:
    """A satisfying assignment for Booleans and reals."""

    def __init__(self, bools: Dict[BoolVar, bool], reals: Dict[RealVar, Fraction]):
        self._bools = bools
        self._reals = reals

    def value_of(self, var: RealVar) -> Fraction:
        return self._reals.get(var, Fraction(0))

    def __getitem__(self, term):
        if isinstance(term, LinExpr):
            total = term.const
            for v, c in term.coeffs.items():
                total += c * self.value_of(v)
            return total
        if isinstance(term, RealVar):
            return self.value_of(term)
        if isinstance(term, BoolVar):
            return self._bools.get(term, False)
        if isinstance(term, BoolExpr):
            return self.eval_bool(term)
        raise SolverError(f"cannot evaluate {term!r} in a model")

    def eval_bool(self, expr: BoolExpr) -> bool:
        """Evaluate an arbitrary Boolean formula under this model."""
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, BoolVar):
            return self._bools.get(expr, False)
        if isinstance(expr, NotExpr):
            return not self.eval_bool(expr.arg)
        if isinstance(expr, AndExpr):
            return all(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, OrExpr):
            return any(self.eval_bool(a) for a in expr.args)
        if isinstance(expr, Atom):
            return expr.evaluate({v: self.value_of(v) for v, _ in expr.coeffs})
        raise SolverError(f"cannot evaluate {expr!r}")

    @property
    def reals(self) -> Dict[RealVar, Fraction]:
        return dict(self._reals)

    @property
    def bools(self) -> Dict[BoolVar, bool]:
        return dict(self._bools)


class Solver:
    """Incremental DPLL(T) solver for QF_LRA + Booleans."""

    def __init__(self) -> None:
        self._theory = LraTheory()
        self._sat = SatSolver(self._theory)
        self._cnf = CnfConverter(self._sat, self._theory)
        self._assertions: list[BoolExpr] = []
        self._model: Optional[Model] = None

    @property
    def assertions(self) -> list[BoolExpr]:
        return list(self._assertions)

    @property
    def statistics(self) -> dict:
        return self._sat.statistics

    def add(self, *exprs: BoolExpr | bool | Iterable) -> None:
        """Assert one or more formulas (lists/tuples are flattened)."""
        for expr in exprs:
            if isinstance(expr, (list, tuple)):
                self.add(*expr)
                continue
            if isinstance(expr, bool):
                expr = BoolConst(expr)
            if not isinstance(expr, BoolExpr):
                raise SolverError(f"cannot assert non-Boolean {expr!r}")
            self._assertions.append(expr)
            self._cnf.assert_formula(expr)

    def check(self) -> CheckResult:
        """Decide satisfiability of the asserted formulas."""
        self._model = None
        if self._sat.solve():
            bools = {
                bv: self._sat.model_value(satvar)
                for bv, satvar in self._cnf.bool_vars.items()
            }
            self._model = Model(bools, self._theory.model_reals)
            return sat
        return unsat

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model is only available after a sat check()")
        return self._model
