"""Linear-real-arithmetic theory backend for the CDCL core (DPLL(T) glue).

Atom lifecycle:

1. At encoding time, :meth:`LraTheory.register_atom` maps each unique
   :class:`~repro.smt.terms.Atom` to a SAT variable and precomputes, for
   both phases of that variable, the bound assertions to perform.
2. During search, the SAT core feeds every trail literal to
   :meth:`on_assert`.  Difference atoms are asserted *eagerly* into the
   difference-logic engine (cheap, catches the vast majority of scheduling
   conflicts immediately); every atom is also asserted as a simplex bound.
   Asserting a *general* atom (non-difference, e.g. the paper's stability
   constraints) additionally triggers a full simplex check because such
   atoms interact with difference chains in ways the DL engine cannot see.
3. At a full propositional assignment, :meth:`final_check` runs the exact
   simplex over everything, certifying the model; the concrete rational
   model is snapshotted there (before the SAT core backtracks).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..sat.literals import is_positive, var_of
from ..sat.solver import TheoryBackend
from .difflogic import DifferenceLogic
from .rationals import DeltaRational
from .simplex import Simplex
from .terms import Atom, RealVar


class _PhaseAction:
    """Precomputed effect of asserting one phase of a theory atom."""

    __slots__ = ("sx_var", "sx_is_upper", "sx_bound", "dl_edge")

    def __init__(
        self,
        sx_var: int,
        sx_is_upper: bool,
        sx_bound: DeltaRational,
        dl_edge: Optional[Tuple[int, int, DeltaRational]],
    ):
        self.sx_var = sx_var
        self.sx_is_upper = sx_is_upper
        self.sx_bound = sx_bound
        # dl_edge = (x, y, bound): assert  x - y <= bound  in the DL engine.
        self.dl_edge = dl_edge


class LraTheory(TheoryBackend):
    """Combined difference-logic + simplex theory with trail alignment."""

    def __init__(self) -> None:
        self.dl = DifferenceLogic()
        self.simplex = Simplex()
        self._real_to_sx: Dict[RealVar, int] = {}
        self._real_to_dl: Dict[RealVar, int] = {}
        self._slack_cache: Dict[Tuple, int] = {}
        # SAT var -> (positive-phase action, negative-phase action, general?)
        self._atoms: Dict[int, Tuple[_PhaseAction, _PhaseAction, bool]] = {}
        # Undo marks, parallel to the SAT trail.
        self._marks: List[Tuple[int, int]] = []
        self._model_reals: Optional[Dict[RealVar, Fraction]] = None

    # ------------------------------------------------------------------
    # Variable / atom registration (encoding time)
    # ------------------------------------------------------------------

    def sx_var(self, var: RealVar) -> int:
        idx = self._real_to_sx.get(var)
        if idx is None:
            idx = self.simplex.new_var()
            self._real_to_sx[var] = idx
        return idx

    def dl_node(self, var: RealVar) -> int:
        idx = self._real_to_dl.get(var)
        if idx is None:
            idx = self.dl.new_node()
            self._real_to_dl[var] = idx
        return idx

    def register_atom(self, atom: Atom, sat_var: int) -> None:
        """Associate a SAT variable with a normalized linear atom."""
        coeffs = atom.coeffs
        rhs = Fraction(atom.rhs)
        strict = atom.strict
        if not coeffs:
            raise SolverError("constant atom should have been folded away")
        is_difference = False
        dl_pos = dl_neg = None

        if len(coeffs) == 1:
            (v, c), = coeffs
            b = rhs / c
            sx = self.sx_var(v)
            node = self.dl_node(v)
            zero = self.dl.zero_node
            if c > 0:
                # v <= b (strict?)   /   neg: v > b
                pos = _PhaseAction(sx, True, _upper(b, strict), (node, zero, _upper(b, strict)))
                neg = _PhaseAction(sx, False, _lower_of_neg_le(b, strict),
                                   (zero, node, -_lower_of_neg_le(b, strict)))
            else:
                # v >= b (strict?)   /   neg: v < b
                pos = _PhaseAction(sx, False, _lower(b, strict), (zero, node, -_lower(b, strict)))
                neg = _PhaseAction(sx, True, _upper_of_neg_ge(b, strict),
                                   (node, zero, _upper_of_neg_ge(b, strict)))
            is_difference = True
        elif len(coeffs) == 2 and coeffs[0][1] == -coeffs[1][1]:
            (v1, c1), (v2, c2) = coeffs
            # c1*v1 + c2*v2 <= rhs with c2 == -c1  =>  v1 - v2 <= rhs/c1 (c1>0)
            if c1 > 0:
                x, y, b = v1, v2, rhs / c1
            else:
                x, y, b = v2, v1, rhs / c2
            nx, ny = self.dl_node(x), self.dl_node(y)
            s = self._slack_for(coeffs)
            # Atom <=> x - y <= b (strict?);  neg: x - y > b <=> y - x < -b.
            # The simplex slack is the literal sum(coeffs), so its bounds
            # stay in the rhs scale while the DL edge uses the b scale.
            pos_bound = _upper(b, strict)
            neg_bound = _lower_of_neg_le(b, strict)
            pos = _PhaseAction(s, True, _upper(rhs, strict), (nx, ny, pos_bound))
            neg = _PhaseAction(s, False, _lower_of_neg_le(rhs, strict),
                               (ny, nx, -neg_bound))
            is_difference = True
        else:
            s = self._slack_for(coeffs)
            pos = _PhaseAction(s, True, _upper(rhs, strict), None)
            neg = _PhaseAction(s, False, _lower_of_neg_le(rhs, strict), None)

        self._atoms[sat_var] = (pos, neg, not is_difference)

    def _slack_for(self, coeffs: Tuple[Tuple[RealVar, Fraction], ...]) -> int:
        key = tuple((v.name, c) for v, c in coeffs)
        s = self._slack_cache.get(key)
        if s is None:
            s = self.simplex.add_row({self.sx_var(v): c for v, c in coeffs})
            self._slack_cache[key] = s
        return s

    # ------------------------------------------------------------------
    # TheoryBackend protocol
    # ------------------------------------------------------------------

    def on_assert(self, literal: int) -> Optional[List[int]]:
        self._marks.append((self.dl.mark(), self.simplex.mark()))
        entry = self._atoms.get(var_of(literal))
        if entry is None:
            return None
        pos, neg, is_general = entry
        action = pos if is_positive(literal) else neg
        if action.dl_edge is not None:
            x, y, bound = action.dl_edge
            conflict = self.dl.assert_constraint(x, y, bound, literal)
            if conflict is not None:
                return conflict
        if action.sx_is_upper:
            conflict = self.simplex.assert_upper(action.sx_var, action.sx_bound, literal)
        else:
            conflict = self.simplex.assert_lower(action.sx_var, action.sx_bound, literal)
        if conflict is not None:
            return conflict
        if is_general:
            return self.simplex.check()
        return None

    def on_backjump(self, n_kept: int) -> None:
        if n_kept < len(self._marks):
            dl_mark, sx_mark = self._marks[n_kept]
            self.dl.undo_to(dl_mark)
            self.simplex.undo_to(sx_mark)
            del self._marks[n_kept:]

    def final_check(self) -> Optional[List[int]]:
        conflict = self.simplex.check()
        if conflict is not None:
            return conflict
        values = self.simplex.model()
        self._model_reals = {
            var: values[idx] for var, idx in self._real_to_sx.items()
        }
        return None

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    @property
    def model_reals(self) -> Dict[RealVar, Fraction]:
        if self._model_reals is None:
            raise SolverError("no theory model available; call check() first")
        return self._model_reals


def _upper(b: Fraction, strict: bool) -> DeltaRational:
    """Upper bound for ``e <= b`` / ``e < b``."""
    return DeltaRational(b, -1 if strict else 0)


def _lower(b: Fraction, strict: bool) -> DeltaRational:
    """Lower bound for ``e >= b`` / ``e > b``."""
    return DeltaRational(b, 1 if strict else 0)


def _lower_of_neg_le(b: Fraction, strict: bool) -> DeltaRational:
    """Lower bound for the negation of ``e <= b (strict?)``.

    not(e <= b)  ->  e > b   -> bound b + delta
    not(e <  b)  ->  e >= b  -> bound b
    """
    return DeltaRational(b, 0 if strict else 1)


def _upper_of_neg_ge(b: Fraction, strict: bool) -> DeltaRational:
    """Upper bound for the negation of ``e >= b (strict?)``.

    not(e >= b)  ->  e < b   -> bound b - delta
    not(e >  b)  ->  e <= b  -> bound b
    """
    return DeltaRational(b, 0 if strict else -1)
