"""Linear-real-arithmetic theory backend for the CDCL core (DPLL(T) glue).

Atom lifecycle:

1. At encoding time, :meth:`LraTheory.register_atom` maps each unique
   :class:`~repro.smt.terms.Atom` to a SAT variable and precomputes, for
   both phases of that variable, the bound assertions to perform.  Atoms
   whose coefficient vectors are exact negations of each other share one
   *canonical* slack variable (the orientation with a positive leading
   coefficient): ``x - y <= 5`` and ``y - x <= -7`` both talk about the
   bounds of the same simplex variable, which makes bound propagation see
   their interaction.
2. During search, the SAT core feeds every trail literal to
   :meth:`on_assert`.  Difference atoms are asserted *eagerly* into the
   difference-logic engine (cheap, catches the vast majority of scheduling
   conflicts immediately); every atom is also asserted as a simplex bound.
   Asserting a *general* atom (non-difference, e.g. the paper's stability
   constraints) additionally triggers a full simplex check because such
   atoms interact with difference chains in ways the DL engine cannot see.
3. When propagation reaches fixpoint without conflict, the SAT core calls
   :meth:`propagate`, which merges two implication sources.  *Bound
   propagation*: every simplex variable whose bound was tightened is
   scanned for registered atoms that the new bound *entails* (asserting
   ``s <= 5`` entails the unassigned atom ``s <= 7``, and refutes
   ``s >= 6``), shipping a lazy one-literal explanation (the bound's
   asserting literal).  *Transitive DL propagation* (Cotton & Maler
   2006): the difference-logic engine derives path bounds through
   freshly asserted edges, and a node-pair atom index maps each derived
   bound to the difference atoms it entails or refutes — these ship the
   deriving path's asserted literals as a lazy *multi-literal*
   explanation.  Either way the SAT core assigns implied literals
   instead of branching — the theory-propagation step of Dutertre & de
   Moura's DPLL(T) design.  Propagations lost to backjumping are *not*
   replayed (they re-arise through search); this keeps the hook
   allocation-free on the no-change path.
4. At a full propositional assignment, :meth:`final_check` runs the exact
   simplex over everything, certifying the model; the concrete rational
   model is snapshotted there (before the SAT core backtracks).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..sat.literals import UNASSIGNED as _UNASSIGNED
from ..sat.literals import is_positive, var_of
from ..sat.solver import TheoryBackend, TheoryImplication
from .difflogic import DifferenceLogic
from .rationals import DeltaRational
from .simplex import NO_LIT, Simplex
from .terms import Atom, RealVar


class _PhaseAction:
    """Precomputed effect of asserting one phase of a theory atom."""

    __slots__ = ("sx_var", "sx_is_upper", "sx_bound", "dl_edge")

    def __init__(
        self,
        sx_var: int,
        sx_is_upper: bool,
        sx_bound: DeltaRational,
        dl_edge: Optional[Tuple[int, int, DeltaRational]],
    ):
        self.sx_var = sx_var
        self.sx_is_upper = sx_is_upper
        self.sx_bound = sx_bound
        # dl_edge = (x, y, bound): assert  x - y <= bound  in the DL engine.
        self.dl_edge = dl_edge


class _AtomWatch:
    """A registered atom, watched on its simplex variable for propagation.

    ``pos_lit``/``neg_lit`` are the internal SAT literals of the two
    phases; the phase bounds describe when the current variable bounds
    entail each phase (see :meth:`LraTheory.propagate`).
    """

    __slots__ = ("sat_var", "pos_lit", "neg_lit", "pos_is_upper",
                 "pos_bound", "neg_bound")

    def __init__(self, sat_var: int, pos: _PhaseAction, neg_action: _PhaseAction):
        self.sat_var = sat_var
        self.pos_lit = 2 * sat_var
        self.neg_lit = 2 * sat_var + 1
        self.pos_is_upper = pos.sx_is_upper
        self.pos_bound = pos.sx_bound
        self.neg_bound = neg_action.sx_bound


class LraTheory(TheoryBackend):
    """Combined difference-logic + simplex theory with trail alignment."""

    def __init__(self, propagation: bool = True,
                 float_prefilter: bool = False,
                 dl_propagation: bool = True,
                 dl_effort: Optional[int] = None) -> None:
        # Transitive difference-logic propagation rides on theory
        # propagation (implications flow through the same hook), so it is
        # active only when both flags are on.
        self.propagation = propagation
        self.dl_propagation = propagation and dl_propagation
        dl_kwargs = {"propagation": self.dl_propagation}
        if dl_effort is not None:
            dl_kwargs["effort_cap"] = dl_effort
        self.dl = DifferenceLogic(**dl_kwargs)
        self.simplex = Simplex(float_prefilter=float_prefilter)
        self._real_to_sx: Dict[RealVar, int] = {}
        self._real_to_dl: Dict[RealVar, int] = {}
        self._slack_cache: Dict[Tuple, int] = {}
        # SAT var -> (positive-phase action, negative-phase action, general?)
        self._atoms: Dict[int, Tuple[_PhaseAction, _PhaseAction, bool]] = {}
        # Simplex var -> atoms whose phases are bounds on that var.
        self._watches: Dict[int, List[_AtomWatch]] = {}
        # Node-pair atom index for transitive DL propagation: a phase with
        # DL edge (x, y, B) means "val(x) - val(y) <= B", so a derived
        # path bound W on the pair (y, x) entails the phase iff W <= B.
        # Key: (path source, path target) -> [(sat_var, phase_lit, B)].
        self._dl_watches: Dict[Tuple[int, int],
                               List[Tuple[int, int, DeltaRational]]] = {}
        # Scaled mirror of _dl_watches (thresholds in the DL engine's
        # integer scale, so the propagation loop compares machine ints);
        # rebuilt lazily whenever the engine rescales or atoms register.
        self._dl_scaled: Dict[Tuple[int, int],
                              List[Tuple[int, int, int, int]]] = {}
        self._dl_scaled_scale = 0
        # Undo marks, parallel to the SAT trail.
        self._marks: List[Tuple[int, int]] = []
        self._model_reals: Optional[Dict[RealVar, Fraction]] = None
        #: Literals implied through transitive DL propagation, and the
        #: total path-explanation literals shipped with them.
        self.dl_propagations = 0
        self.dl_explanation_lits = 0

    # ------------------------------------------------------------------
    # Variable / atom registration (encoding time)
    # ------------------------------------------------------------------

    def sx_var(self, var: RealVar) -> int:
        idx = self._real_to_sx.get(var)
        if idx is None:
            idx = self.simplex.new_var()
            self._real_to_sx[var] = idx
        return idx

    def dl_node(self, var: RealVar) -> int:
        idx = self._real_to_dl.get(var)
        if idx is None:
            idx = self.dl.new_node()
            self._real_to_dl[var] = idx
        return idx

    def register_atom(self, atom: Atom, sat_var: int) -> None:
        """Associate a SAT variable with a normalized linear atom."""
        coeffs = atom.coeffs
        rhs = Fraction(atom.rhs)
        strict = atom.strict
        if not coeffs:
            raise SolverError("constant atom should have been folded away")
        is_difference = False

        if len(coeffs) == 1:
            (v, c), = coeffs
            b = rhs / c
            sx = self.sx_var(v)
            node = self.dl_node(v)
            zero = self.dl.zero_node
            if c > 0:
                # v <= b (strict?)   /   neg: v > b
                pos = _PhaseAction(sx, True, _upper(b, strict), (node, zero, _upper(b, strict)))
                neg = _PhaseAction(sx, False, _lower_of_neg_le(b, strict),
                                   (zero, node, -_lower_of_neg_le(b, strict)))
            else:
                # v >= b (strict?)   /   neg: v < b
                pos = _PhaseAction(sx, False, _lower(b, strict), (zero, node, -_lower(b, strict)))
                neg = _PhaseAction(sx, True, _upper_of_neg_ge(b, strict),
                                   (node, zero, _upper_of_neg_ge(b, strict)))
            is_difference = True
        elif len(coeffs) == 2 and coeffs[0][1] == -coeffs[1][1]:
            (v1, c1), (v2, c2) = coeffs
            # c1*v1 + c2*v2 <= rhs with c2 == -c1  =>  v1 - v2 <= rhs/c1 (c1>0)
            if c1 > 0:
                x, y, b = v1, v2, rhs / c1
            else:
                x, y, b = v2, v1, rhs / c2
            nx, ny = self.dl_node(x), self.dl_node(y)
            s, flip = self._slack_for(coeffs)
            # Atom <=> x - y <= b (strict?);  neg: x - y > b <=> y - x < -b.
            # The simplex slack is the canonical-orientation sum(coeffs), so
            # its bounds stay in the rhs scale (negated when this atom is
            # the flipped orientation) while the DL edge uses the b scale.
            pos_bound = _upper(b, strict)
            neg_bound = _lower_of_neg_le(b, strict)
            pos_sx = _upper(rhs, strict)
            neg_sx = _lower_of_neg_le(rhs, strict)
            if flip:
                pos = _PhaseAction(s, False, -pos_sx, (nx, ny, pos_bound))
                neg = _PhaseAction(s, True, -neg_sx, (ny, nx, -neg_bound))
            else:
                pos = _PhaseAction(s, True, pos_sx, (nx, ny, pos_bound))
                neg = _PhaseAction(s, False, neg_sx, (ny, nx, -neg_bound))
            is_difference = True
        else:
            s, flip = self._slack_for(coeffs)
            if flip:
                pos = _PhaseAction(s, False, -_upper(rhs, strict), None)
                neg = _PhaseAction(s, True, -_lower_of_neg_le(rhs, strict), None)
            else:
                pos = _PhaseAction(s, True, _upper(rhs, strict), None)
                neg = _PhaseAction(s, False, _lower_of_neg_le(rhs, strict), None)

        self._atoms[sat_var] = (pos, neg, not is_difference)
        self._watches.setdefault(pos.sx_var, []).append(
            _AtomWatch(sat_var, pos, neg)
        )
        self.simplex.watch_var(pos.sx_var)
        if is_difference and self.dl_propagation:
            # Index both phases for transitive DL propagation: the phase
            # with DL edge (x, y, B) is entailed by any derived bound
            # W <= B on the path pair (y, x).  Skipped entirely when the
            # channel is off, so the A/B baseline pays nothing.
            for lit, action in ((2 * sat_var, pos), (2 * sat_var + 1, neg)):
                x, y, bound = action.dl_edge
                self._dl_watches.setdefault((y, x), []).append(
                    (sat_var, lit, bound)
                )
                self.dl.watch_pair(y, x, bound)
            self._dl_scaled_scale = 0  # invalidate the scaled mirror

    def _slack_for(self, coeffs: Tuple[Tuple[RealVar, Fraction], ...]) -> Tuple[int, bool]:
        """Canonical slack variable for a coefficient vector.

        Returns ``(simplex_var, flipped)``: vectors that differ only by an
        overall sign share the canonical variable (leading coefficient
        positive); ``flipped`` tells the caller to negate bounds/senses.
        """
        flip = coeffs[0][1] < 0
        if flip:
            coeffs = tuple((v, -c) for v, c in coeffs)
        key = tuple((v.name, c) for v, c in coeffs)
        entry = self._slack_cache.get(key)
        if entry is None:
            s = self.simplex.add_row({self.sx_var(v): c for v, c in coeffs})
            self._slack_cache[key] = s
        else:
            s = entry
        return s, flip

    # ------------------------------------------------------------------
    # TheoryBackend protocol
    # ------------------------------------------------------------------

    def on_assert(self, literal: int) -> Optional[List[int]]:
        self._marks.append((self.dl.mark(), self.simplex.mark()))
        entry = self._atoms.get(var_of(literal))
        if entry is None:
            return None
        pos, neg, is_general = entry
        action = pos if is_positive(literal) else neg
        if action.dl_edge is not None:
            x, y, bound = action.dl_edge
            conflict = self.dl.assert_constraint(x, y, bound, literal)
            if conflict is not None:
                return conflict
        if action.sx_is_upper:
            conflict = self.simplex.assert_upper(action.sx_var, action.sx_bound, literal)
        else:
            conflict = self.simplex.assert_lower(action.sx_var, action.sx_bound, literal)
        if conflict is not None:
            return conflict
        if is_general:
            return self.simplex.check()
        return None

    def on_backjump(self, n_kept: int) -> None:
        if n_kept < len(self._marks):
            dl_mark, sx_mark = self._marks[n_kept]
            self.dl.undo_to(dl_mark)
            self.simplex.undo_to(sx_mark)
            del self._marks[n_kept:]

    def propagate(self, assigns) -> List[TheoryImplication]:
        """Unassigned atoms entailed by the freshly changed theory state.

        Two implication sources are merged:

        * **Transitive difference chains** (``dl_propagation``): the DL
          engine's :meth:`~repro.smt.difflogic.DifferenceLogic.implied_bounds`
          derives path bounds through freshly asserted edges; any watched
          node pair whose derived bound ``W`` is at most a registered
          phase's bound entails that phase.  Explanations are the
          asserted literals of the deriving path — *multi-literal*
          reasons, materialized lazily by the SAT core.
        * **Simplex bound tightenings**: for a watch on variable ``s``
          with positive phase ``s <= B`` (and negative phase ``s >= NB``),
          an upper bound ``U <= B`` entails the positive literal, a lower
          bound ``L >= NB`` entails the negative one (symmetrically for
          lower-sense positive phases).  Explanations are single bound
          literals.

        Atoms already assigned are skipped via ``assigns`` before any
        comparison or allocation — a false-assigned atom whose opposite
        phase becomes entailed cannot reach this hook, because both
        phases bound the same canonical simplex variable and the bound
        pair conflicts inside ``on_assert`` first.
        """
        out: List[TheoryImplication] = []
        unassigned = _UNASSIGNED
        if self.dl_propagation:
            entries = self.dl.implied_bounds()
            if entries:
                dl_watches = self._scaled_dl_watches()
                for entry in entries:
                    watches = dl_watches.get((entry.src, entry.dst))
                    if not watches:
                        continue
                    wr, wd = entry.wr, entry.wd
                    for sat_var, lit, tr, td in watches:
                        if assigns[sat_var] != unassigned:
                            continue
                        if wr < tr or (wr == tr and wd <= td):
                            path_lits = entry.path_lits()
                            out.append((lit, path_lits))
                            self.dl_propagations += 1
                            self.dl_explanation_lits += len(path_lits)
        touched = self.simplex.touched_bounds
        if not self.propagation or not touched:
            if touched:
                touched.clear()
            return out
        sx = self.simplex
        for var in touched:
            watches = self._watches.get(var)
            if not watches:
                continue
            lo = sx.lower_bound(var)
            up = sx.upper_bound(var)
            lo_lit = sx.lower_literal(var)
            up_lit = sx.upper_literal(var)
            for w in watches:
                if assigns[w.sat_var] != unassigned:
                    continue
                if w.pos_is_upper:
                    # pos: var <= pos_bound; neg: var >= neg_bound.
                    if up is not None and up_lit != NO_LIT and up <= w.pos_bound:
                        out.append((w.pos_lit, (up_lit,)))
                    elif lo is not None and lo_lit != NO_LIT and lo >= w.neg_bound:
                        out.append((w.neg_lit, (lo_lit,)))
                else:
                    # pos: var >= pos_bound; neg: var <= neg_bound.
                    if lo is not None and lo_lit != NO_LIT and lo >= w.pos_bound:
                        out.append((w.pos_lit, (lo_lit,)))
                    elif up is not None and up_lit != NO_LIT and up <= w.neg_bound:
                        out.append((w.neg_lit, (up_lit,)))
        touched.clear()
        return out

    def _scaled_dl_watches(self) -> Dict[Tuple[int, int],
                                         List[Tuple[int, int, int, int]]]:
        """The DL atom index with thresholds in the engine's scale.

        Rebuilt only when the DL engine rescaled or new atoms registered
        since the last build — both rare — so the propagation loop runs
        on plain machine-integer comparisons.
        """
        scale = self.dl.scale
        if self._dl_scaled_scale != scale:
            self._dl_scaled = {
                key: [
                    (sat_var, lit) + self.dl.scaled_bound(bound)
                    for sat_var, lit, bound in watches
                ]
                for key, watches in self._dl_watches.items()
            }
            # Every bound here was folded into the engine scale when it
            # was registered (watch_pair), and rescaling only multiplies
            # the scale, so the conversions above can never rescale
            # mid-rebuild: all entries — and the ImpliedBound weights
            # they are compared against — share one scale.
            assert self.dl.scale == scale, "rescale during watch rebuild"
            self._dl_scaled_scale = scale
        return self._dl_scaled

    def final_check(self) -> Optional[List[int]]:
        conflict = self.simplex.check()
        if conflict is not None:
            return conflict
        values = self.simplex.model()
        self._model_reals = {
            var: values[idx] for var, idx in self._real_to_sx.items()
        }
        return None

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    @property
    def model_reals(self) -> Dict[RealVar, Fraction]:
        if self._model_reals is None:
            raise SolverError("no theory model available; call check() first")
        return self._model_reals


def _upper(b: Fraction, strict: bool) -> DeltaRational:
    """Upper bound for ``e <= b`` / ``e < b``."""
    return DeltaRational(b, -1 if strict else 0)


def _lower(b: Fraction, strict: bool) -> DeltaRational:
    """Lower bound for ``e >= b`` / ``e > b``."""
    return DeltaRational(b, 1 if strict else 0)


def _lower_of_neg_le(b: Fraction, strict: bool) -> DeltaRational:
    """Lower bound for the negation of ``e <= b (strict?)``.

    not(e <= b)  ->  e > b   -> bound b + delta
    not(e <  b)  ->  e >= b  -> bound b
    """
    return DeltaRational(b, 0 if strict else 1)


def _upper_of_neg_ge(b: Fraction, strict: bool) -> DeltaRational:
    """Upper bound for the negation of ``e >= b (strict?)``.

    not(e >= b)  ->  e < b   -> bound b - delta
    not(e >  b)  ->  e <= b  -> bound b
    """
    return DeltaRational(b, 0 if strict else -1)
