"""Optimization on top of the SMT solver: minimize a linear objective.

The DPLL(T) solver decides satisfiability; this layer adds linear-
objective minimization by exact rational binary search over fresh solver
instances (each probe asserts ``objective <= mid``).  Termination uses
both an absolute tolerance and a probe budget; the result is a certified
interval ``[lo, hi]``: ``objective <= hi`` is satisfiable (with model),
``objective < lo`` is not (up to the returned precision).

Used by :func:`repro.core.refine.minimize_jitter` to post-optimize the
control quality of synthesized schedules — the natural "quality knob" the
paper leaves as a constraint-only formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from ..errors import SolverError
from .solver import Model, Solver, sat
from .terms import BoolExpr, LinExpr


@dataclass
class OptimizeResult:
    """Outcome of a minimization run."""

    status: str                   # "optimal", "sat" (budget hit), "unsat"
    objective_bound: Optional[Fraction]   # best satisfiable objective value
    model: Optional[Model]
    probes: int

    @property
    def ok(self) -> bool:
        return self.status in ("optimal", "sat")


def _check_with_bound(
    assertions: Sequence[BoolExpr],
    objective: LinExpr,
    bound: Optional[Fraction],
) -> Optional[Model]:
    solver = Solver()
    solver.add(list(assertions))
    if bound is not None:
        solver.add(objective <= bound)
    if solver.check() == sat:
        return solver.model()
    return None


def minimize(
    assertions: Sequence[BoolExpr],
    objective: LinExpr,
    lower_bound: Fraction | int = 0,
    tolerance: Fraction | int | None = None,
    max_probes: int = 32,
) -> OptimizeResult:
    """Minimize ``objective`` subject to ``assertions``.

    Args:
        assertions: the constraint set (re-asserted per probe).
        objective: linear expression to minimize.
        lower_bound: a known valid lower bound on the objective
            (0 for delays/jitters).
        tolerance: stop when the bracket is at most this wide
            (default: 1/1000 of the initial objective value, floor 1e-9).
        max_probes: hard budget on solver invocations.

    Returns an :class:`OptimizeResult`; ``status="optimal"`` means the
    bracket shrank below the tolerance.
    """
    lower = Fraction(lower_bound)
    model = _check_with_bound(assertions, objective, None)
    if model is None:
        return OptimizeResult("unsat", None, None, probes=1)
    best_value = model[objective]
    best_model = model
    probes = 1
    if best_value <= lower:
        return OptimizeResult("optimal", best_value, best_model, probes)
    if tolerance is None:
        tolerance = max(abs(best_value) / 1000, Fraction(1, 10**9))
    else:
        tolerance = Fraction(tolerance)
        if tolerance <= 0:
            raise SolverError("tolerance must be positive")

    hi = best_value
    lo = lower
    while hi - lo > tolerance and probes < max_probes:
        mid = (hi + lo) / 2
        model = _check_with_bound(assertions, objective, mid)
        probes += 1
        if model is not None:
            # The model may beat the probe bound; use the tighter value.
            value = model[objective]
            best_model = model
            best_value = value
            hi = value
        else:
            lo = mid
    status = "optimal" if hi - lo <= tolerance else "sat"
    return OptimizeResult(status, best_value, best_model, probes)
