"""Optimization on top of the solving session: minimize a linear objective.

The DPLL(T) engine decides satisfiability; this layer adds linear-
objective minimization by exact rational binary search.  It is a client
of the session API (:class:`repro.api.Session`): the constraint set is
asserted **once**, and every probe runs in a ``push()``/``pop()`` scope
that asserts ``objective <= mid`` — so learned clauses and theory state
carry across probes instead of being rebuilt per bound (the PR-1
incrementality applied to optimization).  Termination uses both an
absolute tolerance and a probe budget; the result is a certified
interval ``[lo, hi]``: ``objective <= hi`` is satisfiable (with model),
``objective < lo`` is not (up to the returned precision).

Used by :func:`repro.core.refine.minimize_jitter` to post-optimize the
control quality of synthesized schedules — the natural "quality knob" the
paper leaves as a constraint-only formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..errors import SolverError
from .solver import Model
from .terms import BoolExpr, LinExpr


@dataclass
class OptimizeResult:
    """Outcome of a minimization run."""

    status: str                   # "optimal", "sat" (budget hit), "unsat"
    objective_bound: Optional[Fraction]   # best satisfiable objective value
    model: Optional[Model]
    probes: int

    @property
    def ok(self) -> bool:
        return self.status in ("optimal", "sat")


def minimize(
    assertions: Sequence[BoolExpr],
    objective: LinExpr,
    lower_bound: Fraction | int = 0,
    tolerance: Fraction | int | None = None,
    max_probes: int = 32,
    session=None,
) -> OptimizeResult:
    """Minimize ``objective`` subject to ``assertions``.

    Args:
        assertions: the constraint set (asserted once, probes scoped).
        objective: linear expression to minimize.
        lower_bound: a known valid lower bound on the objective
            (0 for delays/jitters).
        tolerance: stop when the bracket is at most this wide
            (default: 1/1000 of the initial objective value, floor 1e-9).
        max_probes: hard budget on solver invocations.
        session: an optional caller-owned :class:`repro.api.Session`
            (must hold no other assertions); by default a fresh native
            session is created.

    Returns an :class:`OptimizeResult`; ``status="optimal"`` means the
    bracket shrank below the tolerance.
    """
    from ..api import Session

    if session is None:
        session = Session()
    session.add(list(assertions))

    def probe(bound: Optional[Fraction]) -> Optional[Model]:
        """A model under ``objective <= bound``, or None when unsat.

        Branches on the check's *status*: a sat answer without a model
        (a backend that cannot produce one) and an ``unknown`` answer
        both raise — neither can drive the bound search soundly.
        """
        if bound is None:
            outcome = session.check()
        else:
            session.push()
            try:
                session.add(objective <= bound)
                outcome = session.check()
            finally:
                session.pop()
        if outcome == "unsat":
            return None
        if outcome != "sat":
            raise SolverError(
                f"cannot optimize: backend {session.backend_name!r} "
                f"answered {outcome.status}"
            )
        return outcome.require_model()

    lower = Fraction(lower_bound)
    model = probe(None)
    if model is None:
        return OptimizeResult("unsat", None, None, probes=1)
    best_value = model[objective]
    best_model = model
    probes = 1
    if best_value <= lower:
        return OptimizeResult("optimal", best_value, best_model, probes)
    if tolerance is None:
        tolerance = max(abs(best_value) / 1000, Fraction(1, 10**9))
    else:
        tolerance = Fraction(tolerance)
        if tolerance <= 0:
            raise SolverError("tolerance must be positive")

    hi = best_value
    lo = lower
    while hi - lo > tolerance and probes < max_probes:
        mid = (hi + lo) / 2
        model = probe(mid)
        probes += 1
        if model is not None:
            # The model may beat the probe bound; use the tighter value.
            value = model[objective]
            best_model = model
            best_value = value
            hi = value
        else:
            lo = mid
    status = "optimal" if hi - lo <= tolerance else "sat"
    return OptimizeResult(status, best_value, best_model, probes)
