"""A minimal discrete-event engine with exact rational timestamps."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Optional

from ..errors import SimulationError


@dataclass(frozen=True, order=True)
class Event:
    """An event ordered by (time, priority, sequence number)."""

    time: Fraction
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Time-ordered event queue; monotonicity is enforced on pop."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now: Optional[Fraction] = None

    def push(self, time: Fraction, kind: str, payload: Any = None,
             priority: int = 0) -> None:
        if self._now is not None and time < self._now:
            raise SimulationError(
                f"cannot schedule {kind!r} at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, Event(time, priority, next(self._seq),
                                         kind, payload))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now(self) -> Optional[Fraction]:
        return self._now
