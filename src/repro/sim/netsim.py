"""Discrete-event simulation of a synthesized TSN schedule (DESIGN.md S10).

Runs every frame of one hyper-period through the behavioural switch model
of :mod:`repro.network.switch`:

* the sensor releases each frame at its sampling instant;
* each link transmission occupies the directed link for ``ld`` — overlaps
  raise :class:`SimulationError` (this re-checks Eq. 5 *behaviourally*);
* each switch's forwarding engine enqueues the frame ``sd`` after arrival,
  and its timed gate opens at the synthesized ``gamma`` — opening a gate
  for a frame that has not arrived raises (re-checks Eq. 6);
* controller arrival times yield measured end-to-end delays, which must
  equal the analytical ``e2e`` of the solution bit-for-bit.

This gives an independent *executable* semantics for solutions, closing
the loop between the SMT model and the 802.1Qbv machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from ..errors import SimulationError
from ..network.graph import NodeKind
from .events import EventQueue
from ..core.solution import Solution


@dataclass
class SimTrace:
    """Measured behaviour of one hyper-period."""

    arrivals: Dict[str, Fraction]          # uid -> controller arrival time
    e2e: Dict[str, Fraction]               # uid -> measured end-to-end delay
    link_transmissions: List[Tuple[str, str, Fraction, str]]
    events_processed: int

    def app_latency_jitter(self, solution: Solution, app_name: str):
        """(latency, jitter) per Eq. (9), from *measured* delays."""
        delays = [
            self.e2e[uid]
            for uid, sched in solution.schedules.items()
            if sched.app == app_name
        ]
        if not delays:
            raise SimulationError(f"no simulated messages for app {app_name!r}")
        return min(delays), max(delays) - min(delays)


def simulate_solution(solution: Solution) -> SimTrace:
    """Execute one hyper-period of the schedule; raises on any violation."""
    problem = solution.problem
    net = problem.network
    sd, ld = problem.delays.sd, problem.delays.ld
    switches = solution.program_switches()

    queue = EventQueue()
    # Track per directed link the end of its last transmission.
    link_busy_until: Dict[Tuple[str, str], Tuple[Fraction, str]] = {}
    arrivals: Dict[str, Fraction] = {}
    e2e: Dict[str, Fraction] = {}
    transmissions: List[Tuple[str, str, Fraction, str]] = []
    events = 0

    def start_transmission(uid: str, u: str, v: str, start: Fraction) -> None:
        busy = link_busy_until.get((u, v))
        if busy is not None and start < busy[0]:
            raise SimulationError(
                f"link {u}->{v}: {uid} starts at {start} while {busy[1]} "
                f"transmits until {busy[0]} (Eq. 5 violated)"
            )
        link_busy_until[(u, v)] = (start + ld, uid)
        transmissions.append((u, v, start, uid))
        queue.push(start + ld, "arrival", (uid, v))

    # Seed: every sensor release.
    for uid, sched in solution.schedules.items():
        queue.push(sched.release, "release", (uid,))

    while queue:
        event = queue.pop()
        events += 1
        if event.kind == "release":
            (uid,) = event.payload
            sched = solution.schedules[uid]
            start_transmission(uid, sched.route[0], sched.route[1], event.time)
        elif event.kind == "arrival":
            uid, node = event.payload
            sched = solution.schedules[uid]
            kind = net.kind(node)
            if kind == NodeKind.CONTROLLER:
                arrivals[uid] = event.time
                e2e[uid] = event.time - sched.release
            elif kind == NodeKind.SWITCH:
                sw = switches[node]
                out_peer, enqueue_time = sw.receive(uid, event.time)
                gate_time = sw.gate_open_time(uid)
                if gate_time < enqueue_time:
                    raise SimulationError(
                        f"switch {node}: gate for {uid} opens at {gate_time} "
                        f"before the frame is enqueued at {enqueue_time} "
                        "(Eq. 6 violated)"
                    )
                queue.push(gate_time, "gate", (uid, node))
            else:
                raise SimulationError(
                    f"{uid}: frame arrived at a sensor node {node!r}"
                )
        elif event.kind == "gate":
            uid, node = event.payload
            sw = switches[node]
            out_peer = sw.transmit(uid, event.time)
            start_transmission(uid, node, out_peer, event.time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    missing = set(solution.schedules) - set(arrivals)
    if missing:
        raise SimulationError(f"frames never delivered: {sorted(missing)}")
    return SimTrace(arrivals, e2e, transmissions, events)


def cross_check_e2e(solution: Solution, trace: SimTrace) -> None:
    """Measured delays must equal the analytical solution exactly."""
    for uid, sched in solution.schedules.items():
        measured = trace.e2e[uid]
        if measured != sched.e2e:
            raise SimulationError(
                f"{uid}: measured e2e {measured} != analytical {sched.e2e}"
            )
