"""Discrete-event TSN network simulator (DESIGN.md S10): an independent
executable semantics used to validate synthesized schedules."""

from .events import Event, EventQueue
from .netsim import SimTrace, cross_check_e2e, simulate_solution

__all__ = [
    "Event",
    "EventQueue",
    "SimTrace",
    "cross_check_e2e",
    "simulate_solution",
]
