"""Canonical problem fingerprints and ancestor matching for the cache.

The knowledge cache (:mod:`repro.service.cache`) is keyed by a stable
hash of *everything that determines the encoded formula*: the topology,
the delay model, the application set (periods, endpoints, stability
specs, frame sizes), and the encoding-affecting synthesis options.
Semantically identical problems — applications listed in a different
order, wire dicts with reordered keys, options differing only in
non-encoding knobs (``probe_routes``, ``dl_propagation``,
``max_conflicts``, backend choice) — must produce the *same*
fingerprint, while any change that alters the asserted constraints or
the interned variable vocabulary (mode, route limit, stage count, path
cutoff, repair guards, the encoder namespace, any period — and through
it the hyper-period horizon) must change it.

Ancestor matching
-----------------

A request that misses exactly can still warm-start from a *compatible
ancestor*: a cached entry over the **same topology, delays, mode, path
cutoff, namespace and hyper-period** whose application set is a subset
or superset of the request's.  The soundness rules mirror PR 4's
route-limit pad-up/import-down argument, transposed to message sets:

* **Subset ancestor** (cached apps ⊆ request apps): the encoded formula
  of the larger problem contains every constraint of the smaller one
  verbatim — same hyper-period means the shared flows expand to the
  same message instances with the same releases, same topology and path
  cutoff mean the same candidate route enumeration, and adding
  applications only *adds* contention/stability constraints.  So
  ``F_request == F_cached ∧ Extra``: learned clauses and route vetoes
  of the cached run are entailed by the request's formula and import
  soundly (clauses still subject to the route-limit pad rules of
  :mod:`repro.portfolio.sharing`).
* **Superset ancestor** (cached apps ⊇ request apps): the entailment
  runs the wrong way — the cached clauses may depend on contention with
  messages the request does not have, so **no clause or veto import**.
  The cached *schedule*, restricted to the request's messages, is still
  a high-quality hint: it is replayed as an assumption probe only
  (complete fallback to the unrestricted solve), which is sound for any
  recipient.

Entries with different compatibility keys are never paired: a different
topology, delay model, mode, path cutoff, namespace, or hyper-period
changes the constraint semantics or the route enumeration, and nothing
is transferable.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Dict, Optional, Tuple

#: Encoder namespace pinned by the synthesis driver (see
#: ``core.synthesizer._SHARED_NAMESPACE``): part of the fingerprint
#: because every cached literal is serialized over it.
DEFAULT_NAMESPACE = "p"


def _frac(value: Fraction) -> str:
    """Exact, canonical rendering of a rational (hash-stable)."""
    return str(Fraction(value))


def _app_descriptor(app) -> Dict[str, object]:
    """Canonical form of one control application."""
    stability = None
    if app.stability is not None:
        stability = [
            [_frac(seg.alpha), _frac(seg.beta), _frac(seg.l_lo), _frac(seg.l_hi)]
            for seg in app.stability.segments
        ]
    return {
        "name": app.name,
        "sensor": app.sensor,
        "controller": app.controller,
        "period": _frac(app.period),
        "frame_bytes": app.frame_bytes,
        "stability": stability,
    }


def canonical_problem(problem) -> Dict[str, object]:
    """Order-independent canonical form of a :class:`SynthesisProblem`.

    Nodes, links and applications are sorted, rationals rendered
    exactly; two problems with the same canonical form encode the same
    constraint system (given equal options).
    """
    net = problem.network
    return {
        "nodes": sorted((name, net.kind(name).value) for name in net.nodes),
        "links": sorted(tuple(sorted(link)) for link in net.links),
        "delays": {"sd": _frac(problem.delays.sd), "ld": _frac(problem.delays.ld)},
        "apps": sorted(
            (_app_descriptor(app) for app in problem.apps),
            key=lambda d: d["name"],
        ),
    }


def canonical_options(options) -> Dict[str, object]:
    """The encoding-affecting subset of :class:`SynthesisOptions`.

    Deliberately excluded: ``backend`` (the formula is identical either
    way), ``dl_propagation`` / ``probe_routes`` / ``max_conflicts``
    (search behavior, not constraints), ``max_repair_rounds`` (bounds
    the repair loop, not the encoding), and the transient
    ``seed_knowledge`` / ``faults`` bundles.  ``repair`` is *included*:
    it swaps permanent freezes for guarded ones, changing the asserted
    formula of every stage after the first.
    """
    return {
        "mode": options.mode,
        "routes": options.routes,
        "stages": options.stages,
        "path_cutoff": options.path_cutoff,
        "repair": bool(options.repair),
    }


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def problem_fingerprint(problem, options=None,
                        namespace: str = DEFAULT_NAMESPACE) -> str:
    """The cache key: hash of canonical problem + encoding options.

    ``options=None`` fingerprints with the default
    :class:`~repro.core.SynthesisOptions` (monolithic, all routes).
    """
    if options is None:
        from ..core.synthesizer import SynthesisOptions
        options = SynthesisOptions()
    return _digest({
        "problem": canonical_problem(problem),
        "options": canonical_options(options),
        "namespace": namespace,
        "horizon": _frac(problem.hyperperiod),
    })


def compatibility_key(problem, options=None,
                      namespace: str = DEFAULT_NAMESPACE) -> str:
    """The ancestor-matching bucket (see the module docstring).

    Everything that must agree for *any* knowledge transfer: topology,
    delays, mode, path cutoff, namespace, and the hyper-period (equal
    horizons guarantee shared flows expand to identical message
    instances).  Route limit, stage count, and repair are deliberately
    absent — transfers across those are governed by the sharing module's
    pad/import rules and by how the seed is applied, not by the bucket.
    """
    if options is None:
        from ..core.synthesizer import SynthesisOptions
        options = SynthesisOptions()
    canon = canonical_problem(problem)
    return _digest({
        "nodes": canon["nodes"],
        "links": canon["links"],
        "delays": canon["delays"],
        "mode": options.mode,
        "path_cutoff": options.path_cutoff,
        "namespace": namespace,
        "horizon": _frac(problem.hyperperiod),
    })


def app_set_key(problem) -> Dict[str, str]:
    """Per-application identity map: name -> descriptor digest.

    Two applications are "the same" for ancestor matching only when
    their *full* descriptors agree (endpoints, period, frame size,
    stability spec) — the name alone is not enough, because the interned
    vocabulary carries the name while the constraints carry the rest.
    """
    return {
        app.name: _digest(_app_descriptor(app))
        for app in problem.apps
    }


def ancestor_relation(request_apps: Dict[str, str],
                      cached_apps: Dict[str, str]) -> Optional[str]:
    """How a cached entry's app set relates to a request's.

    Returns ``"equal"``, ``"subset"`` (cached ⊂ request: clauses and
    vetoes import soundly), ``"superset"`` (cached ⊃ request: schedule
    hints only), or None when the sets are incomparable or any shared
    name maps to a different descriptor (incompatible — never paired).
    """
    for name, digest in cached_apps.items():
        if name in request_apps and request_apps[name] != digest:
            return None
    cached = set(cached_apps)
    request = set(request_apps)
    if cached == request:
        return "equal"
    if cached < request:
        return "subset"
    if cached > request:
        return "superset"
    return None


def match_quality(relation: Optional[str], cached_apps: Dict[str, str],
                  request_apps: Dict[str, str]) -> Tuple[int, int]:
    """Rank compatible ancestors: prefer subset over superset, then the
    largest overlap (ties broken by the caller on recency)."""
    if relation is None:
        return (-1, 0)
    order = {"equal": 3, "subset": 2, "superset": 1}
    overlap = len(set(cached_apps) & set(request_apps))
    return (order[relation], overlap)
