"""Clients for the synthesis service.

:class:`ServiceClient` wraps an in-process
:class:`~repro.service.server.SynthesisServer` with an awaitable
request API — no sockets, no serialization, problems passed by
reference — which is what tests, benchmarks, and embedding applications
want.  :func:`request_over_tcp` exercises the JSON-line TCP endpoint:
it ships a list of frames and collects every reply, which is all the
example script and the protocol tests need without a full connection-
pooling client.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Tuple

from .protocol import SynthesisRequest, decode_frame, encode_frame
from .server import SynthesisServer


class ServiceClient:
    """In-process client bound to one :class:`SynthesisServer`."""

    def __init__(self, server: SynthesisServer) -> None:
        self._server = server
        self._ids = itertools.count(1)

    def _request(self, problem, options, deadline,
                 request_id: Optional[str]) -> SynthesisRequest:
        if request_id is None:
            request_id = f"req-{next(self._ids)}"
        kwargs = {} if options is None else {"options": options}
        return SynthesisRequest(id=request_id, problem=problem,
                                deadline=deadline, **kwargs)

    async def submit(self, problem, options=None, *,
                     deadline: Optional[float] = None,
                     request_id: Optional[str] = None,
                     ) -> Tuple[str, asyncio.Future]:
        """Admit one request; returns ``(id, future)`` without waiting."""
        request = self._request(problem, options, deadline, request_id)
        return request.id, await self._server.submit(request)

    async def solve(self, problem, options=None, *,
                    deadline: Optional[float] = None,
                    request_id: Optional[str] = None) -> dict:
        """Admit one request and await its response frame."""
        _, future = await self.submit(problem, options, deadline=deadline,
                                      request_id=request_id)
        return await future

    async def solve_batch(self,
                          requests: List[SynthesisRequest]) -> List[dict]:
        """Admit a batch and await all responses (submission order)."""
        futures = await self._server.submit_batch(requests)
        return list(await asyncio.gather(*futures))

    async def cancel(self, request_id: str) -> bool:
        return await self._server.cancel(request_id)

    async def drain(self) -> Dict[str, int]:
        return await self._server.drain()

    def stats(self) -> dict:
        return self._server.stats()


async def request_over_tcp(host: str, port: int,
                           frames: List[dict],
                           expect: Optional[int] = None,
                           timeout: float = 60.0) -> List[dict]:
    """Send request frames over one TCP connection; collect all replies.

    ``expect`` overrides the reply count (by default one reply per
    ``solve``/``cancel``/``stats``/``drain`` frame and one per entry of
    a ``batch``).  Replies arrive in completion order, not submission
    order — match on ``id``.
    """
    if expect is None:
        expect = 0
        for frame in frames:
            if frame.get("op") == "batch":
                expect += len(frame.get("requests", []))
            else:
                expect += 1
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for frame in frames:
            writer.write(encode_frame(frame))
        await writer.drain()
        replies: List[dict] = []
        for _ in range(expect):
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                break
            replies.append(decode_frame(line))
        return replies
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
