"""Synthesis-as-a-service: a long-lived scheduling server.

Everything the earlier PRs built — the declarative
:class:`repro.api.Session`, the supervised portfolio machinery, and the
cross-worker :class:`~repro.portfolio.sharing.KnowledgePool` — lives
inside one process solving one problem.  This package turns the stack
into a *service*: an asyncio front-end (:class:`SynthesisServer`)
accepts synthesis requests (single and batched) over a small JSON-line
protocol or through the in-process :class:`ServiceClient`, dispatches
them onto a pool of persistent solver workers, and — the headline — a
persistent, disk-backed :class:`KnowledgeCache` keyed by **problem
fingerprint** warm-starts repeated or near-repeated problems from
learned clauses, route vetoes, and prior schedules instead of solving
cold.

See ``docs/service.md`` for the protocol, the fingerprint/ancestor-
matching semantics and their soundness argument, the admission/deadline
knobs, the cache format, and the metrics table.
"""

from .cache import CacheEntry, KnowledgeCache
from .client import ServiceClient, request_over_tcp
from .fingerprint import (
    ancestor_relation,
    canonical_options,
    canonical_problem,
    compatibility_key,
    problem_fingerprint,
)
from .protocol import (
    SynthesisRequest,
    decode_frame,
    encode_frame,
    problem_from_wire,
    problem_to_wire,
)
from .server import ServicePolicy, SynthesisServer
from .workers import ServiceWorker, export_request_knowledge

__all__ = [
    "CacheEntry",
    "KnowledgeCache",
    "ServiceClient",
    "ServicePolicy",
    "ServiceWorker",
    "SynthesisRequest",
    "SynthesisServer",
    "ancestor_relation",
    "canonical_options",
    "canonical_problem",
    "compatibility_key",
    "decode_frame",
    "encode_frame",
    "export_request_knowledge",
    "problem_fingerprint",
    "problem_from_wire",
    "problem_to_wire",
    "request_over_tcp",
]
