"""Persistent solver workers behind the synthesis service.

A :class:`ServiceWorker` is one long-lived solver process that handles
requests sequentially over a duplex pipe — the service analogue of the
portfolio engine's per-strategy workers, but *reused* across requests
so repeated solves pay the fork/import cost once.  The child runs
``core.solve`` with the same wiring as a portfolio worker: a locally
built native engine (so knowledge can be exported afterwards), an
``on_restart`` heartbeat hook, and a :class:`DeadlineWatchdog` arming
the request's deadline.  Cancellation is SIGUSR1: the child's handler
calls ``interrupt()`` on the active session, the solve returns
``unknown``, and the payload is flagged ``cancelled``.

The parent side is deliberately *blocking* (the asyncio server runs it
in an executor thread): it streams heartbeats, detects worker death as
pipe EOF (raising :class:`WorkerCrashed` for the server's supervision
retry loop), and reaps a worker that blows through its deadline plus
grace (:class:`WorkerStalled`).

:class:`InlineWorker` implements the same interface with no subprocess
— solves run in the calling thread, and ``cancel()`` fires
``Session.interrupt()`` directly.  It exists for deterministic tests,
benchmarks, and sandboxes where forking is unavailable; injected
crashes (:class:`~repro.portfolio.faults.InjectedCrash`) surface as
:class:`WorkerCrashed` so the supervision path is identical.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from typing import Callable, Dict, Optional

from ..api import NativeBackend, Session
from ..core import synthesizer as synth
from ..portfolio import sharing
from ..portfolio.faults import InjectedCrash
from ..portfolio.frames import (KIND_HEARTBEAT, KIND_REQUEST, KIND_RESULT,
                                KIND_SHUTDOWN)
from ..portfolio.supervision import (DeadlineWatchdog, SupervisionPolicy,
                                     heartbeat_frame)
from .protocol import schedules_to_wire

#: Pipe poll interval on the parent side (seconds).
_POLL = 0.05

#: Extra parent-side slack past a request deadline before a silent
#: worker is declared stalled and reaped: the child watchdog interrupts
#: at the deadline, but the engine only honors it at a conflict
#: boundary, so give the solve a moment to unwind and ship its payload.
_DEADLINE_SLACK = 1.5


class WorkerCrashed(RuntimeError):
    """The worker died (EOF/SIGKILL/injected crash) mid-request."""


class WorkerStalled(WorkerCrashed):
    """The worker blew its deadline + grace without answering."""


# ---------------------------------------------------------------------------
# Knowledge export (runs wherever the solve ran)
# ---------------------------------------------------------------------------


def export_request_knowledge(options, result, engine) -> Dict[str, object]:
    """What a completed request contributes to the knowledge cache.

    * ``clauses`` — schedule-vocabulary units + ranked learned clauses,
      single-stage runs only (an incremental stage's database mixes in
      freeze consequences; see :mod:`repro.portfolio.sharing`).  Unlike
      the race's ``terminal_artifacts`` this exports on *any* verdict:
      learned clauses are entailed by the asserted formula regardless of
      how the check ended, and the cache — unlike a race — outlives sat
      results.
    * ``route_veto`` — the doomed route-subset selection of a provable
      unsat (``result.route_veto`` is only ever set for one).
    * ``schedule`` — the winning schedule in stage-prefix message form,
      replayed by recipients as an assumption probe.
    """
    clauses = ()
    if (options.stages == 1 and engine is not None
            and hasattr(engine, "export_learned_clauses")):
        clauses = sharing._exportable_clauses(engine)
    schedule = ()
    if result.solution is not None:
        schedule = tuple(
            (
                sched.uid,
                tuple(sched.route),
                tuple(sorted((node, str(value))
                             for node, value in sched.gammas.items())),
            )
            for _, sched in sorted(result.solution.schedules.items())
        )
    return {
        "clauses": clauses,
        "route_veto": tuple(result.route_veto) if result.route_veto else None,
        "schedule": schedule,
    }


# ---------------------------------------------------------------------------
# Shared solve core (child process and inline worker)
# ---------------------------------------------------------------------------


def _build_session(options):
    """A session built exactly as ``core.solve`` would, plus the engine
    handle the worker needs for interrupts/watchdogs/knowledge export
    (``synth.Solver`` is the patchable engine factory)."""
    if options.backend == "native":
        engine = synth.Solver(dl_propagation=options.dl_propagation,
                              max_conflicts=options.max_conflicts)
        engine.backend_name = "native[service]"
        return Session(backend=NativeBackend(engine=engine)), engine
    return Session(backend=options.backend), None


class _CancelPump:
    """Re-interrupt a session for as long as cancellation is requested.

    One ``interrupt()`` only aborts the *current* check — the engine
    clears its flag at every ``check()`` entry, and ``core.solve``'s
    probe ladder runs several checks per request — so a single signal
    could cancel a probe and leave the unrestricted solve running.
    Mirroring :class:`~repro.portfolio.supervision.DeadlineWatchdog`,
    a daemon thread keeps firing until the solve actually returns.
    """

    def __init__(self, session: Session, was_cancelled: Callable[[], bool],
                 interval: float = 0.025) -> None:
        self._session = session
        self._was_cancelled = was_cancelled
        self._interval = interval
        self._stop = threading.Event()
        self._thread = None

    def __enter__(self) -> "_CancelPump":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="service-cancel-pump")
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._was_cancelled():
                try:
                    self._session.interrupt()
                except Exception:
                    pass
            self._stop.wait(self._interval)


def _solve_request(problem, options, deadline: Optional[float],
                   register: Callable[[Optional[Session]], None],
                   was_cancelled: Callable[[], bool],
                   on_heartbeat: Optional[Callable[[dict], None]],
                   heartbeat_interval: float) -> Dict[str, object]:
    """Run one solve and build its result payload.

    ``deadline`` is relative seconds from now; ``register`` publishes
    the active session to whatever cancellation path the caller wires
    (signal handler or ``InlineWorker.cancel``), and must be called
    with None before returning.
    """
    session, engine = _build_session(options)
    if engine is not None and on_heartbeat is not None:
        last = [0.0]

        def _beat(eng) -> None:
            now = time.perf_counter()
            if now - last[0] >= heartbeat_interval:
                last[0] = now
                on_heartbeat(heartbeat_frame(
                    "service", getattr(eng, "statistics", {}) or {}))

        engine.on_restart = _beat
    abs_deadline = (time.perf_counter() + deadline
                    if deadline is not None else None)
    register(session)
    try:
        with DeadlineWatchdog(engine, abs_deadline), \
                _CancelPump(session, was_cancelled):
            result = synth.solve(problem, options, session=session)
    finally:
        register(None)
    cancelled = was_cancelled() and result.status == "unknown"
    deadline_exceeded = (not cancelled and result.status == "unknown"
                         and abs_deadline is not None
                         and time.perf_counter() >= abs_deadline)
    schedules = ()
    if result.solution is not None:
        schedules = schedules_to_wire(result.solution.schedules)
    return {
        "status": result.status,
        "cancelled": cancelled,
        "deadline_exceeded": deadline_exceeded,
        "synthesis_time": result.synthesis_time,
        "stages_completed": result.stages_completed,
        "statistics": dict(result.statistics),
        "schedules": schedules,
        "unsat_explanation": result.unsat_explanation,
        "knowledge": export_request_knowledge(options, result, engine),
    }


# ---------------------------------------------------------------------------
# Child process
# ---------------------------------------------------------------------------

#: Child-side cancellation state: the SIGUSR1 handler interrupts the
#: active session (if any) and latches the flag for the current request.
_child_state: Dict[str, object] = {"session": None, "cancelled": False}


def _child_sigusr1(signum, frame) -> None:
    _child_state["cancelled"] = True
    session = _child_state["session"]
    if session is not None:
        try:
            session.interrupt()
        except Exception:
            pass


def _register_child(session: Optional[Session]) -> None:
    if session is not None:
        _child_state["cancelled"] = False
    _child_state["session"] = session


def service_worker_main(conn, heartbeat_interval: float) -> None:
    """Entry point of one persistent worker process."""
    signal.signal(signal.SIGUSR1, _child_sigusr1)

    def beat(frame: dict) -> None:
        try:
            conn.send(frame)
        except (BrokenPipeError, OSError):
            pass

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg.get("kind")
        if kind == KIND_SHUTDOWN:
            break
        if kind != KIND_REQUEST:
            continue
        try:
            payload = _solve_request(
                msg["problem"], msg["options"], msg.get("deadline"),
                _register_child, lambda: bool(_child_state["cancelled"]),
                beat, heartbeat_interval,
            )
        except InjectedCrash:
            # A non-harsh injected crash in a process worker still means
            # "this worker dies": exit uncleanly so the parent sees EOF
            # and runs the same retry path as a SIGKILL.
            os._exit(3)
        except Exception as exc:  # solver bug: answer, don't die
            payload = {"status": "error", "cancelled": False,
                       "deadline_exceeded": False,
                       "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send({"kind": KIND_RESULT, "id": msg.get("id"),
                       "payload": payload})
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Parent-side handles
# ---------------------------------------------------------------------------


class ServiceWorker:
    """Parent-side handle of one persistent solver process."""

    mode = "process"

    def __init__(self, policy: Optional[SupervisionPolicy] = None,
                 name: str = "w0") -> None:
        self.policy = policy or SupervisionPolicy()
        self.name = name
        self.restarts = 0
        self._proc: Optional[mp.Process] = None
        self._conn = None
        self._spawn()

    # -- lifecycle -------------------------------------------------------

    def _spawn(self) -> None:
        parent, child = mp.Pipe()
        proc = mp.Process(
            target=service_worker_main,
            args=(child, self.policy.heartbeat_interval),
            daemon=True, name=f"service-worker-{self.name}",
        )
        proc.start()
        child.close()
        self._proc, self._conn = proc, parent

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def restart(self) -> None:
        """Reap whatever is left and spawn a fresh process."""
        self._reap()
        self._spawn()
        self.restarts += 1

    def _reap(self) -> None:
        proc, self._proc = self._proc, None
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(self.policy.kill_grace)
            if proc.is_alive():
                proc.kill()
                proc.join()
        else:
            proc.join()

    def close(self) -> None:
        """Graceful shutdown: ask nicely, then reap."""
        if self._conn is not None and self.alive:
            try:
                self._conn.send({"kind": KIND_SHUTDOWN})
                self._proc.join(self.policy.kill_grace)
            except (BrokenPipeError, OSError):
                pass
        self._reap()

    # -- requests --------------------------------------------------------

    def cancel(self) -> bool:
        """Interrupt the in-flight solve (SIGUSR1 -> session.interrupt)."""
        if not self.alive:
            return False
        try:
            os.kill(self._proc.pid, signal.SIGUSR1)
            return True
        except (ProcessLookupError, OSError):
            return False

    def solve(self, request_id: str, problem, options,
              deadline: Optional[float] = None,
              on_heartbeat: Optional[Callable[[dict], None]] = None,
              ) -> Dict[str, object]:
        """Dispatch one request and block for its payload.

        Raises :class:`WorkerCrashed` on pipe EOF (the child died) and
        :class:`WorkerStalled` — after reaping the child — when nothing
        came back by the deadline plus grace.  The caller owns retries.
        """
        if not self.alive:
            raise WorkerCrashed(f"worker {self.name} is not running")
        try:
            self._conn.send({"kind": KIND_REQUEST, "id": request_id,
                             "problem": problem, "options": options,
                             "deadline": deadline})
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {self.name}: {exc}") from None
        hard = (time.perf_counter() + deadline
                + self.policy.kill_grace + _DEADLINE_SLACK
                if deadline is not None else None)
        while True:
            try:
                if self._conn.poll(_POLL):
                    frame = self._conn.recv()
                else:
                    frame = None
            except (EOFError, OSError):
                raise WorkerCrashed(
                    f"worker {self.name} died mid-request") from None
            if frame is not None:
                kind = frame.get("kind")
                if kind == KIND_RESULT and frame.get("id") == request_id:
                    return frame["payload"]
                if kind == KIND_HEARTBEAT and on_heartbeat is not None:
                    on_heartbeat(frame)
                continue
            if not self.alive:
                # Drain any final frames racing the death notice.
                try:
                    while self._conn.poll(0):
                        frame = self._conn.recv()
                        if (frame.get("kind") == KIND_RESULT
                                and frame.get("id") == request_id):
                            return frame["payload"]
                except (EOFError, OSError):
                    pass
                raise WorkerCrashed(f"worker {self.name} died mid-request")
            if hard is not None and time.perf_counter() >= hard:
                self._reap()
                raise WorkerStalled(
                    f"worker {self.name} stalled past its deadline")


class InlineWorker:
    """In-process worker with the :class:`ServiceWorker` interface.

    Solves run in the calling thread (the server's executor), so
    ``cancel()`` can fire :meth:`repro.api.Session.interrupt` directly
    and injected crashes surface as :class:`WorkerCrashed` — the same
    supervision story as the process worker, minus the fork.
    """

    mode = "inline"

    def __init__(self, policy: Optional[SupervisionPolicy] = None,
                 name: str = "w0") -> None:
        self.policy = policy or SupervisionPolicy()
        self.name = name
        self.restarts = 0
        self._session: Optional[Session] = None
        self._cancelled = False

    @property
    def alive(self) -> bool:
        return True

    pid = None

    def restart(self) -> None:
        self._session = None
        self._cancelled = False
        self.restarts += 1

    def close(self) -> None:
        self._session = None

    def cancel(self) -> bool:
        session = self._session
        if session is None:
            return False
        self._cancelled = True
        try:
            session.interrupt()
        except Exception:
            return False
        return True

    def _register(self, session: Optional[Session]) -> None:
        if session is not None:
            self._cancelled = False
        self._session = session

    def solve(self, request_id: str, problem, options,
              deadline: Optional[float] = None,
              on_heartbeat: Optional[Callable[[dict], None]] = None,
              ) -> Dict[str, object]:
        try:
            return _solve_request(
                problem, options, deadline, self._register,
                lambda: self._cancelled, on_heartbeat,
                self.policy.heartbeat_interval,
            )
        except InjectedCrash as exc:
            raise WorkerCrashed(f"worker {self.name}: injected crash "
                                f"({exc})") from exc
