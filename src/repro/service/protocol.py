"""The service wire protocol: JSON lines, one frame per line.

Client -> server frames (``op`` selects the operation)::

    {"op": "solve",  "id": "r1", "problem": {...}, "options": {...},
     "deadline": 5.0}
    {"op": "batch",  "requests": [{...solve frame...}, ...]}
    {"op": "cancel", "id": "r1"}
    {"op": "stats"}
    {"op": "drain"}

Server -> client frames (``type`` names the outcome; every solve
eventually gets exactly one)::

    {"type": "result",     "id": "r1", "status": "sat", ...}
    {"type": "timeout",    "id": "r1", ...}
    {"type": "cancelled",  "id": "r1", ...}
    {"type": "overloaded", "id": "r1", "queue_depth": N, ...}  # load shed
    {"type": "rejected",   "id": "r1", "reason": "draining"}
    {"type": "error",      "id": "r1", "error": "..."}
    {"type": "stats",      "metrics": {...}}

Problems travel as order-insensitive JSON (:func:`problem_to_wire` /
:func:`problem_from_wire`); rationals are exact ``"num/den"`` strings,
never floats, so a round-tripped problem fingerprints identically to
the original.  Schedules in ``result`` frames use the same convention.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ..core.problem import ControlApplication, SynthesisProblem
from ..core.synthesizer import SynthesisOptions
from ..errors import EncodingError
from ..network.graph import Network
from ..network.timing import DelayModel
from ..stability.piecewise import Segment, StabilitySpec

#: Response types a solve submission can resolve to.
RESPONSE_TYPES = frozenset({
    "result", "timeout", "cancelled", "overloaded", "rejected", "error",
})

#: Request option keys accepted from the wire (everything else is
#: rejected so a typo'd knob cannot silently solve the wrong problem).
_WIRE_OPTION_KEYS = frozenset({
    "mode", "routes", "stages", "path_cutoff", "repair", "probe_routes",
    "dl_propagation", "max_conflicts",
})


class ProtocolError(ValueError):
    """A malformed frame or an invalid wire payload."""


# ---------------------------------------------------------------------------
# Problem serialization
# ---------------------------------------------------------------------------


def _frac_to_wire(value: Fraction) -> str:
    return str(Fraction(value))


def _frac_from_wire(value: object) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, (str, int)):
        return Fraction(value)
    raise ProtocolError(f"expected an exact rational, got {value!r}")


def problem_to_wire(problem: SynthesisProblem) -> dict:
    """JSON-safe representation of a problem (exact rationals)."""
    net = problem.network
    apps = []
    for app in problem.apps:
        stability = None
        if app.stability is not None:
            stability = [
                [_frac_to_wire(s.alpha), _frac_to_wire(s.beta),
                 _frac_to_wire(s.l_lo), _frac_to_wire(s.l_hi)]
                for s in app.stability.segments
            ]
        apps.append({
            "name": app.name,
            "sensor": app.sensor,
            "controller": app.controller,
            "period": _frac_to_wire(app.period),
            "frame_bytes": app.frame_bytes,
            "stability": stability,
        })
    return {
        "nodes": [[name, net.kind(name).value] for name in sorted(net.nodes)],
        "links": [sorted(link) for link in sorted(
            tuple(sorted(l)) for l in net.links)],
        "delays": {"sd": _frac_to_wire(problem.delays.sd),
                   "ld": _frac_to_wire(problem.delays.ld)},
        "apps": apps,
    }


def problem_from_wire(wire: dict) -> SynthesisProblem:
    """Rebuild a :class:`SynthesisProblem` from its wire form."""
    if not isinstance(wire, dict):
        raise ProtocolError(f"problem payload must be a dict, got "
                            f"{type(wire).__name__}")
    try:
        net = Network()
        adders = {"switch": net.add_switch, "sensor": net.add_sensor,
                  "controller": net.add_controller}
        for name, kind in wire["nodes"]:
            adders[kind](name)
        for u, v in wire["links"]:
            net.add_link(u, v)
        delays = DelayModel(sd=_frac_from_wire(wire["delays"]["sd"]),
                            ld=_frac_from_wire(wire["delays"]["ld"]))
        apps = []
        for entry in wire["apps"]:
            stability = None
            if entry.get("stability") is not None:
                stability = StabilitySpec(tuple(
                    Segment(alpha=_frac_from_wire(a), beta=_frac_from_wire(b),
                            l_lo=_frac_from_wire(lo), l_hi=_frac_from_wire(hi))
                    for a, b, lo, hi in entry["stability"]
                ))
            apps.append(ControlApplication(
                name=entry["name"],
                sensor=entry["sensor"],
                controller=entry["controller"],
                period=_frac_from_wire(entry["period"]),
                stability=stability,
                frame_bytes=entry.get("frame_bytes", 1500),
            ))
        return SynthesisProblem(net, apps, delays)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError, EncodingError) as exc:
        raise ProtocolError(f"invalid problem payload: "
                            f"{type(exc).__name__}: {exc}") from None


def options_from_wire(wire: Optional[dict]) -> SynthesisOptions:
    """Build :class:`SynthesisOptions` from a request's options dict."""
    if wire is None:
        return SynthesisOptions()
    if not isinstance(wire, dict):
        raise ProtocolError("options payload must be a dict")
    unknown = set(wire) - _WIRE_OPTION_KEYS
    if unknown:
        raise ProtocolError(f"unknown option keys: {sorted(unknown)}")
    try:
        return SynthesisOptions(**wire)
    except EncodingError as exc:
        raise ProtocolError(f"invalid options: {exc}") from None


def schedules_to_wire(schedules: Dict[str, object]) -> List[dict]:
    """Winning schedules as JSON (uid, route, release table, e2e)."""
    out = []
    for uid in sorted(schedules):
        sched = schedules[uid]
        out.append({
            "uid": sched.uid,
            "app": sched.app,
            "route": list(sched.route),
            "gammas": {node: _frac_to_wire(g)
                       for node, g in sorted(sched.gammas.items())},
            "release": _frac_to_wire(sched.release),
            "e2e": _frac_to_wire(sched.e2e),
        })
    return out


# ---------------------------------------------------------------------------
# Requests (the server's internal admission unit)
# ---------------------------------------------------------------------------


@dataclass
class SynthesisRequest:
    """One admitted solve request (in-process or decoded from the wire).

    ``deadline`` is a *relative* budget in seconds from admission; the
    server converts it to an absolute monotonic deadline at admission
    time, so queue wait counts against it (a request that waited out its
    whole budget in the queue gets a ``timeout`` response without ever
    occupying a worker).
    """

    id: str
    problem: SynthesisProblem
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ProtocolError("request id must be a non-empty string")
        if self.deadline is not None and self.deadline <= 0:
            raise ProtocolError("deadline must be positive (seconds)")


def request_from_wire(frame: dict) -> SynthesisRequest:
    """Decode one ``solve`` frame into a :class:`SynthesisRequest`."""
    return SynthesisRequest(
        id=frame.get("id", ""),
        problem=problem_from_wire(frame.get("problem")),
        options=options_from_wire(frame.get("options")),
        deadline=frame.get("deadline"),
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(frame: dict) -> bytes:
    """One frame -> one JSON line (newline-terminated bytes)."""
    return (json.dumps(frame, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def decode_frame(line: bytes) -> dict:
    """One JSON line -> one frame dict (raises ProtocolError on junk)."""
    try:
        frame = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got "
                            f"{type(frame).__name__}")
    return frame
