"""The asyncio synthesis server: admission, dispatch, write-back.

One :class:`SynthesisServer` owns a bounded request queue, a fixed pool
of persistent workers (process or inline — see
:mod:`repro.service.workers`), and optionally a
:class:`~repro.service.cache.KnowledgeCache`.  The life of a request:

1. **Admission** (:meth:`SynthesisServer.submit`): draining servers
   reject (``rejected``), full queues shed (``overloaded``), duplicate
   ids reject; otherwise the relative deadline becomes an absolute
   monotonic one *now*, so queue wait counts against it.
2. **Dispatch**: one dispatcher coroutine per worker pulls from the
   queue.  Requests that waited out their whole budget answer
   ``timeout`` without touching a worker; cancelled-in-queue requests
   were already answered.  The cache is consulted (exact hit, then best
   compatible ancestor) and any seed rides in on
   ``SynthesisOptions.seed_knowledge``.
3. **Solve** (executor thread, blocking): the worker solves under the
   request deadline.  Worker death is supervised — crash retries with
   the capped-backoff schedule of
   :class:`~repro.portfolio.supervision.SupervisionPolicy`, stalls are
   reaped, budgets exhaust to ``error`` — and every event lands in the
   shared :class:`~repro.portfolio.supervision.Supervisor` counters.
4. **Write-back**: completed ``sat``/``unsat`` solves store their
   exported knowledge back into the cache (LRU insert, atomic file).
5. **Response**: exactly one typed frame per admitted request.

Metrics (:meth:`SynthesisServer.stats`) aggregate queue wait / solve
wall percentiles, response-type counts, cache hit/miss counters,
warm-start conflict savings, and supervision events; the bench harness
folds them into its roll-ups.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..portfolio.supervision import SupervisionPolicy, Supervisor
from .cache import CacheHit, KnowledgeCache
from .protocol import (ProtocolError, SynthesisRequest, decode_frame,
                       encode_frame, request_from_wire)
from .workers import (InlineWorker, ServiceWorker, WorkerCrashed,
                      WorkerStalled)

#: Bounded history used for latency percentiles.
_LATENCY_WINDOW = 4096

#: Supervision ledger key for service workers (one shared strategy
#: label: workers are interchangeable, unlike race strategies).
_STRATEGY = "service"


@dataclass(frozen=True)
class ServicePolicy:
    """Admission-control and supervision knobs of one server."""

    workers: int = 2                 # worker pool size == max in-flight
    max_queue: int = 16              # queued (not yet dispatched) requests
    worker_mode: str = "process"     # "process" | "inline"
    max_crash_retries: int = 2       # per request, after the first attempt
    default_deadline: Optional[float] = None   # seconds; None = unbounded
    supervision: SupervisionPolicy = field(default_factory=SupervisionPolicy)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.worker_mode not in ("process", "inline"):
            raise ValueError(f"unknown worker_mode {self.worker_mode!r}")
        if self.max_crash_retries < 0:
            raise ValueError("max_crash_retries must be >= 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive")


class _Pending:
    """One admitted request's in-server state."""

    __slots__ = ("request", "future", "admitted", "abs_deadline",
                 "cancel_requested", "worker", "started")

    def __init__(self, request: SynthesisRequest, future: asyncio.Future,
                 admitted: float, abs_deadline: Optional[float]) -> None:
        self.request = request
        self.future = future
        self.admitted = admitted
        self.abs_deadline = abs_deadline
        self.cancel_requested = False
        self.worker = None
        self.started = False


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class SynthesisServer:
    """Accepts synthesis requests, dispatches onto persistent workers."""

    def __init__(self, policy: Optional[ServicePolicy] = None,
                 cache: Optional[KnowledgeCache] = None,
                 fault_plan=None) -> None:
        self.policy = policy or ServicePolicy()
        self.cache = cache
        #: A :class:`repro.portfolio.faults.FaultPlan` keyed by request
        #: id and attempt number — the service reuses the portfolio's
        #: fault-injection harness verbatim for chaos tests.
        self.fault_plan = fault_plan
        self.supervisor = Supervisor(self.policy.supervision)
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List = []
        self._dispatchers: List[asyncio.Task] = []
        self._pending: Dict[str, _Pending] = {}
        self._inflight = 0
        self._draining = False
        self._started = False
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._seq = 0
        self.counters: Dict[str, int] = {
            "admitted": 0, "completed": 0, "overloaded": 0, "rejected": 0,
            "queue_expired": 0, "cancelled_in_queue": 0,
            "result": 0, "timeout": 0, "cancelled": 0, "error": 0,
            "cache_seeded": 0, "warm_start_conflict_savings": 0,
        }
        self._queue_waits: List[float] = []
        self._solve_walls: List[float] = []
        self._totals: List[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SynthesisServer":
        if self._started:
            return self
        self._queue = asyncio.Queue()
        worker_cls = (ServiceWorker if self.policy.worker_mode == "process"
                      else InlineWorker)
        for i in range(self.policy.workers):
            worker = worker_cls(policy=self.policy.supervision, name=f"w{i}")
            self._workers.append(worker)
            self._dispatchers.append(
                asyncio.ensure_future(self._dispatch(worker)))
        self._started = True
        return self

    async def __aenter__(self) -> "SynthesisServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def drain(self) -> Dict[str, int]:
        """Stop admitting; finish everything already accepted."""
        self._draining = True
        if self._queue is not None:
            await self._queue.join()
        while self._inflight:
            await asyncio.sleep(0.01)
        return dict(self.counters)

    async def shutdown(self) -> Dict[str, int]:
        """Drain, stop dispatchers, reap workers, close the TCP server."""
        summary = await self.drain()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for _ in self._dispatchers:
            self._queue.put_nowait(None)
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers.clear()
        loop = asyncio.get_event_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.close)
        self._workers.clear()
        self._started = False
        return summary

    @property
    def leaked_workers(self) -> int:
        """Live worker processes beyond the configured pool (0 = clean).

        After :meth:`shutdown` the pool is empty, so any live child
        counts as leaked.
        """
        import multiprocessing as mp
        return sum(1 for p in mp.active_children()
                   if p.name.startswith("service-worker-")
                   and p not in [getattr(w, "_proc", None)
                                 for w in self._workers])

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _resolved(self, frame: dict) -> asyncio.Future:
        fut = asyncio.get_event_loop().create_future()
        fut.set_result(frame)
        return fut

    async def submit(self, request: SynthesisRequest) -> asyncio.Future:
        """Admit one request; the future resolves to its response frame."""
        if not self._started:
            await self.start()
        if self._draining:
            self.counters["rejected"] += 1
            return self._resolved({"type": "rejected", "id": request.id,
                                   "reason": "draining"})
        if request.id in self._pending:
            self.counters["rejected"] += 1
            return self._resolved({"type": "rejected", "id": request.id,
                                   "reason": "duplicate-id"})
        if self._queue.qsize() >= self.policy.max_queue:
            self.counters["overloaded"] += 1
            return self._resolved({"type": "overloaded", "id": request.id,
                                   "queue_depth": self._queue.qsize(),
                                   "max_queue": self.policy.max_queue})
        now = time.perf_counter()
        deadline = request.deadline
        if deadline is None:
            deadline = self.policy.default_deadline
        pending = _Pending(
            request, asyncio.get_event_loop().create_future(), now,
            now + deadline if deadline is not None else None)
        self._pending[request.id] = pending
        self.counters["admitted"] += 1
        self._queue.put_nowait(pending)
        return pending.future

    async def submit_batch(
            self, requests: List[SynthesisRequest]) -> List[asyncio.Future]:
        return [await self.submit(request) for request in requests]

    async def cancel(self, request_id: str) -> bool:
        """Cancel a queued or in-flight request (one response either way)."""
        pending = self._pending.get(request_id)
        if pending is None:
            return False
        pending.cancel_requested = True
        if pending.started:
            if pending.worker is not None:
                pending.worker.cancel()
            return True
        # Still queued: answer now; the dispatcher skips the husk.
        self.counters["cancelled_in_queue"] += 1
        self._respond(pending, {
            "type": "cancelled", "id": request_id,
            "queue_wait": time.perf_counter() - pending.admitted,
            "cancelled_in": "queue",
        })
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, worker) -> None:
        while True:
            pending = await self._queue.get()
            if pending is None:
                self._queue.task_done()
                break
            self._inflight += 1
            try:
                await self._handle(worker, pending)
            except Exception as exc:  # dispatcher must never die
                self._respond(pending, {
                    "type": "error", "id": pending.request.id,
                    "error": f"dispatch failure: "
                             f"{type(exc).__name__}: {exc}",
                })
            finally:
                self._inflight -= 1
                self._queue.task_done()

    async def _handle(self, worker, pending: _Pending) -> None:
        request = pending.request
        now = time.perf_counter()
        queue_wait = now - pending.admitted
        if pending.future.done():            # cancelled while queued
            self._pending.pop(request.id, None)
            return
        if pending.abs_deadline is not None and now >= pending.abs_deadline:
            self.counters["queue_expired"] += 1
            self._respond(pending, {
                "type": "timeout", "id": request.id,
                "queue_wait": queue_wait, "solve_wall": 0.0,
                "expired_in": "queue",
            })
            return

        hit: Optional[CacheHit] = None
        opts = request.options
        if self.cache is not None:
            hit = self.cache.lookup(request.problem, opts)
            if hit is not None:
                opts = replace(opts, seed_knowledge=hit.seed)
                self.counters["cache_seeded"] += 1

        pending.worker = worker
        pending.started = True
        loop = asyncio.get_event_loop()
        payload, attempts = await loop.run_in_executor(
            None, self._solve_blocking, worker, pending, opts)
        solve_wall = time.perf_counter() - now

        response = self._classify(pending, payload, hit)
        response.update(queue_wait=queue_wait, solve_wall=solve_wall,
                        attempts=attempts)
        self._write_back(request, payload, response, hit)
        self._queue_waits.append(queue_wait)
        self._solve_walls.append(solve_wall)
        self._totals.append(queue_wait + solve_wall)
        del self._queue_waits[:-_LATENCY_WINDOW]
        del self._solve_walls[:-_LATENCY_WINDOW]
        del self._totals[:-_LATENCY_WINDOW]
        self._respond(pending, response)

    def _solve_blocking(self, worker, pending: _Pending,
                        opts) -> Tuple[dict, int]:
        """Supervised blocking solve (runs in an executor thread)."""
        request = pending.request
        attempt = 1
        while True:
            attempt_opts = opts
            if self.fault_plan is not None:
                faults = self.fault_plan.for_attempt(
                    request.id, attempt, harsh=(worker.mode == "process"))
                if faults is not None:
                    attempt_opts = replace(opts, faults=faults)
            if attempt > 1 and attempt_opts.faults is not None \
                    and self.fault_plan is None:
                # Request-carried faults are a one-shot injection.
                attempt_opts = replace(attempt_opts, faults=None)
            remaining = None
            if pending.abs_deadline is not None:
                remaining = pending.abs_deadline - time.perf_counter()
                if remaining <= 0:
                    return ({"status": "unknown", "cancelled": False,
                             "deadline_exceeded": True}, attempt)
            try:
                payload = worker.solve(
                    request.id, request.problem, attempt_opts,
                    deadline=remaining, on_heartbeat=self._note_heartbeat)
                return payload, attempt
            except WorkerStalled:
                self.supervisor.note_stall(_STRATEGY)
                worker.restart()
                return ({"status": "unknown",
                         "cancelled": pending.cancel_requested,
                         "deadline_exceeded": True}, attempt)
            except WorkerCrashed as exc:
                self.supervisor.note_crash(_STRATEGY)
                worker.restart()
                if pending.cancel_requested:
                    return ({"status": "unknown", "cancelled": True,
                             "deadline_exceeded": False}, attempt)
                if attempt > self.policy.max_crash_retries:
                    self.supervisor.note_exhausted(_STRATEGY)
                    return ({"status": "error", "cancelled": False,
                             "deadline_exceeded": False,
                             "error": f"worker crashed, retries exhausted: "
                                      f"{exc}"}, attempt)
                self.supervisor.note_retry(_STRATEGY)
                # repro: allow[async-blocking] _solve_blocking only ever
                # runs on the loop's default executor (see _solve:
                # run_in_executor), so this backoff sleeps a worker
                # thread, never the event loop.
                time.sleep(self.policy.supervision.backoff(attempt))
                attempt += 1

    def _note_heartbeat(self, frame: dict) -> None:
        self.supervisor.note_heartbeat(frame.get("strategy", _STRATEGY),
                                       frame)

    # ------------------------------------------------------------------
    # Responses and write-back
    # ------------------------------------------------------------------

    def _classify(self, pending: _Pending, payload: dict,
                  hit: Optional[CacheHit]) -> dict:
        request_id = pending.request.id
        cache_info = {"hit": hit.kind if hit is not None else None}
        status = payload.get("status")
        if payload.get("cancelled") or (pending.cancel_requested
                                        and status == "unknown"):
            return {"type": "cancelled", "id": request_id,
                    "cache": cache_info}
        if status == "error":
            return {"type": "error", "id": request_id,
                    "error": payload.get("error", "worker failure"),
                    "cache": cache_info}
        if payload.get("deadline_exceeded"):
            return {"type": "timeout", "id": request_id,
                    "cache": cache_info}
        return {
            "type": "result", "id": request_id, "status": status,
            "schedules": payload.get("schedules", ()),
            "statistics": payload.get("statistics", {}),
            "stages_completed": payload.get("stages_completed", 0),
            "unsat_explanation": payload.get("unsat_explanation"),
            "cache": cache_info,
        }

    def _write_back(self, request: SynthesisRequest, payload: dict,
                    response: dict, hit: Optional[CacheHit]) -> None:
        if self.cache is None or response["type"] != "result":
            return
        stats = payload.get("statistics", {}) or {}
        if hit is not None and hit.entry.work:
            baseline = (hit.entry.work.get("conflicts", 0)
                        + hit.entry.work.get("decisions", 0))
            spent = stats.get("conflicts", 0) + stats.get("decisions", 0)
            saved = baseline - spent
            if saved > 0:
                self.counters["warm_start_conflict_savings"] += saved
        if hit is not None and hit.kind == "exact":
            return  # the entry is already this problem's knowledge
        status = payload.get("status")
        if status not in ("sat", "unsat"):
            return
        knowledge = payload.get("knowledge") or {}
        self.cache.store(
            request.problem, request.options, status,
            clauses=knowledge.get("clauses", ()),
            route_veto=knowledge.get("route_veto"),
            schedule=knowledge.get("schedule", ()),
            work={key: stats.get(key, 0)
                  for key in ("conflicts", "decisions", "propagations")},
        )

    def _respond(self, pending: _Pending, frame: dict) -> None:
        self._pending.pop(pending.request.id, None)
        if pending.future.done():
            return
        self.counters["completed"] += 1
        self.counters[frame["type"]] = self.counters.get(frame["type"], 0) + 1
        pending.future.set_result(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The ``stats`` frame's metrics payload."""
        def dist(values: List[float]) -> dict:
            return {
                "count": len(values),
                "mean": sum(values) / len(values) if values else 0.0,
                "p50": _percentile(values, 0.50),
                "p99": _percentile(values, 0.99),
            }
        return {
            "requests": dict(self.counters),
            "latency": {
                "queue_wait": dist(self._queue_waits),
                "solve_wall": dist(self._solve_walls),
                "total": dist(self._totals),
            },
            "cache": (self.cache.statistics
                      if self.cache is not None else None),
            "supervision": self.supervisor.statistics,
            "workers": [
                {"name": w.name, "mode": w.mode, "alive": w.alive,
                 "restarts": w.restarts}
                for w in self._workers
            ],
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": self._inflight,
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # TCP front-end (JSON lines)
    # ------------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        """Bind the JSON-line endpoint; returns the bound (host, port)."""
        if not self._started:
            await self.start()
        self._tcp = await asyncio.start_server(self._handle_conn, host, port)
        bound = self._tcp.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        replies: List[asyncio.Task] = []

        async def send(frame: dict) -> None:
            async with lock:
                writer.write(encode_frame(frame))
                await writer.drain()

        async def answer(future: asyncio.Future) -> None:
            await send(await future)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                    await self._handle_frame(frame, send, replies)
                except ProtocolError as exc:
                    await send({"type": "error",
                                "id": self._frame_id(line), "error": str(exc)})
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    def _frame_id(line: bytes) -> Optional[str]:
        try:
            import json
            frame = json.loads(line.decode())
            return frame.get("id") if isinstance(frame, dict) else None
        except Exception:
            return None

    async def _handle_frame(self, frame: dict, send, replies) -> None:
        op = frame.get("op")
        if op == "solve":
            future = await self.submit(request_from_wire(frame))
            replies.append(asyncio.ensure_future(self._pipe(future, send)))
        elif op == "batch":
            requests = frame.get("requests")
            if not isinstance(requests, list):
                raise ProtocolError("batch frame needs a 'requests' list")
            for entry in requests:
                if not isinstance(entry, dict):
                    raise ProtocolError("batch entries must be objects")
                future = await self.submit(request_from_wire(entry))
                replies.append(
                    asyncio.ensure_future(self._pipe(future, send)))
        elif op == "cancel":
            found = await self.cancel(frame.get("id", ""))
            await send({"type": "ack", "op": "cancel",
                        "id": frame.get("id"), "found": found})
        elif op == "stats":
            await send({"type": "stats", "metrics": self.stats()})
        elif op == "drain":
            await self.drain()
            await send({"type": "ack", "op": "drain"})
        else:
            raise ProtocolError(f"unknown op {op!r}")

    @staticmethod
    async def _pipe(future: asyncio.Future, send) -> None:
        await send(_json_safe(dict(await future)))


def _json_safe(value):
    """Strip non-JSON values (tuples -> lists, drop exotic objects)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
