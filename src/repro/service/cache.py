"""The fingerprint-keyed, disk-backed knowledge cache.

One entry per problem fingerprint, one JSON file per entry.  An entry
records what the winning solve of that problem *learned* — schedule-
vocabulary clauses (learned + root units, serialized literal tuples),
the route veto of a proven unsat, and the winning schedule — plus the
compatibility key and per-app descriptor digests that drive ancestor
matching (:mod:`repro.service.fingerprint`), and bookkeeping (status,
solver work, hit count).

Admission path (:meth:`KnowledgeCache.lookup`): an exact fingerprint
hit seeds everything; a miss falls back to the best compatible ancestor
in the same bucket — clauses and vetoes only from *subset* ancestors,
schedule hints from either direction (see the fingerprint module for
the soundness argument).  The returned
:class:`~repro.portfolio.sharing.SeedKnowledge` plugs straight into
``SynthesisOptions.seed_knowledge``, so the whole import machinery
(route-limit padding, veto escapes, prefix probes) is PR 4's, untouched.

Persistence is crash-safe and hostile-input-safe: files are written
atomically (tmp + rename), and a file that fails to parse or validate
on load is *quarantined* — renamed to ``<name>.quarantined``, counted,
never imported, never fatal (the robustness contract of PR 7's pool
boundary, extended to disk).

Eviction is LRU with two caps: ``max_entries`` and ``max_bytes`` of
on-disk payload.  Every hit refreshes recency; inserts evict from the
cold end until both caps hold.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..portfolio import sharing
from ..portfolio.frames import (ARTIFACT_CLAUSES, ARTIFACT_PREFIX,
                                ARTIFACT_VETO)
from ..portfolio.sharing import (ClauseBatch, RouteVeto, SeedKnowledge,
                                 StagePrefix, signature_of)
from . import fingerprint as fp

#: On-disk schema version; bump on incompatible layout changes (old
#: entries are quarantined, not migrated — they are only ever hints).
CACHE_VERSION = 1


def _tuplify(value):
    """Recursively turn JSON lists back into the tuples sharing expects."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


@dataclass
class CacheEntry:
    """One cached problem's transferable knowledge."""

    fingerprint: str
    compat_key: str
    apps: Dict[str, str]                 # name -> descriptor digest
    options: Dict[str, object]           # canonical_options of the recorder
    status: str                          # sat / unsat / unknown
    clauses: Tuple[Tuple, ...] = ()      # serialized schedule-vocab literals
    route_veto: Optional[Tuple[Tuple[str, int], ...]] = None
    schedule: Tuple[Tuple[str, Tuple[str, ...],
                          Tuple[Tuple[str, str], ...]], ...] = ()
    work: Dict[str, int] = field(default_factory=dict)
    created: float = 0.0
    hits: int = 0

    def to_json(self) -> dict:
        return {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "compat_key": self.compat_key,
            "apps": self.apps,
            "options": self.options,
            "status": self.status,
            "clauses": self.clauses,
            "route_veto": self.route_veto,
            "schedule": self.schedule,
            "work": self.work,
            "created": self.created,
            "hits": self.hits,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CacheEntry":
        if payload.get("version") != CACHE_VERSION:
            raise ValueError(f"unsupported cache version "
                             f"{payload.get('version')!r}")
        entry = cls(
            fingerprint=payload["fingerprint"],
            compat_key=payload["compat_key"],
            apps=dict(payload["apps"]),
            options=dict(payload["options"]),
            status=payload["status"],
            clauses=_tuplify(payload.get("clauses", [])),
            route_veto=_tuplify(payload["route_veto"])
            if payload.get("route_veto") else None,
            schedule=_tuplify(payload.get("schedule", [])),
            work=dict(payload.get("work", {})),
            created=float(payload.get("created", 0.0)),
            hits=int(payload.get("hits", 0)),
        )
        entry.validate()
        return entry

    def validate(self) -> None:
        """Shape-check everything a seeded worker would deserialize.

        The disk is a pool boundary exactly like PR 7's worker pipes: an
        entry that fails here is quarantined by the loader, never
        imported.  Clause/veto payloads reuse the pipe-boundary
        validator from :mod:`repro.portfolio.sharing`.
        """
        if not isinstance(self.fingerprint, str) or not self.fingerprint:
            raise ValueError("entry without a fingerprint")
        if not isinstance(self.compat_key, str) or not self.compat_key:
            raise ValueError("entry without a compatibility key")
        if not isinstance(self.apps, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in self.apps.items()):
            raise ValueError("malformed app digest map")
        if self.status not in ("sat", "unsat", "unknown"):
            raise ValueError(f"unknown cached status {self.status!r}")
        sig = signature_of(_OptionsView(self.options))
        if self.clauses:
            problem = sharing.validate_artifact(
                {"kind": ARTIFACT_CLAUSES, "signature": sig,
                 "clauses": self.clauses})
            if problem is not None:
                raise ValueError(f"cached clauses invalid: {problem}")
        if self.route_veto is not None:
            problem = sharing.validate_artifact(
                {"kind": ARTIFACT_VETO, "signature": sig,
                 "limits": self.route_veto})
            if problem is not None:
                raise ValueError(f"cached veto invalid: {problem}")
        if self.schedule:
            problem = sharing.validate_artifact(
                {"kind": ARTIFACT_PREFIX, "signature": sig,
                 "stages_completed": 1,
                 "messages": self.schedule})
            if problem is not None:
                raise ValueError(f"cached schedule invalid: {problem}")

    @property
    def source_routes(self) -> Optional[int]:
        routes = self.options.get("routes")
        return int(routes) if routes is not None else None


class _OptionsView:
    """Duck-typed options over a canonical-options dict (for signatures)."""

    def __init__(self, options: Dict[str, object]) -> None:
        self.mode = options.get("mode", "stability")
        routes = options.get("routes")
        self.routes = int(routes) if routes is not None else None
        self.stages = int(options.get("stages", 1))
        cutoff = options.get("path_cutoff")
        self.path_cutoff = int(cutoff) if cutoff is not None else None
        self.repair = bool(options.get("repair", False))


@dataclass(frozen=True)
class CacheHit:
    """What :meth:`KnowledgeCache.lookup` resolved for one request."""

    kind: str                       # "exact" | "subset" | "superset"
    entry: CacheEntry
    seed: SeedKnowledge


class KnowledgeCache:
    """LRU-bounded persistent cache of per-fingerprint knowledge."""

    def __init__(self, root: str | Path, max_entries: int = 256,
                 max_bytes: int = 16 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # fingerprint -> entry, in LRU order (first = coldest).
        self._entries: Dict[str, CacheEntry] = {}
        self._sizes: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "exact_hits": 0, "ancestor_hits": 0, "misses": 0,
            "stores": 0, "evictions": 0, "quarantined_entries": 0,
        }
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def _load(self) -> None:
        """Scan the cache directory; quarantine anything unreadable."""
        loaded: List[Tuple[float, CacheEntry, int]] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                entry = CacheEntry.from_json(payload)
                if entry.fingerprint != path.stem:
                    raise ValueError("fingerprint does not match filename")
            except (ValueError, KeyError, TypeError, OSError,
                    json.JSONDecodeError):
                self._quarantine(path)
                continue
            loaded.append((entry.created, entry, path.stat().st_size))
        # Recency order: oldest first (LRU cold end at the front).
        for _, entry, size in sorted(loaded, key=lambda t: t[0]):
            self._entries[entry.fingerprint] = entry
            self._sizes[entry.fingerprint] = size
        self._evict()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file aside; never raise, never import."""
        try:
            path.rename(path.with_suffix(path.suffix + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.counters["quarantined_entries"] += 1

    def _write(self, entry: CacheEntry) -> int:
        """Atomic write (tmp + rename); returns the on-disk size."""
        blob = (json.dumps(entry.to_json(), sort_keys=True) + "\n").encode()
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self._path(entry.fingerprint))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(blob)

    def _evict(self) -> None:
        while self._entries and (
                len(self._entries) > self.max_entries
                or sum(self._sizes.values()) > self.max_bytes):
            coldest = next(iter(self._entries))
            # Refuse to evict the only entry on a size-cap violation it
            # cannot fix — a single oversized entry is better than none.
            if (len(self._entries) == 1
                    and len(self._entries) <= self.max_entries):
                break
            del self._entries[coldest]
            self._sizes.pop(coldest, None)
            try:
                self._path(coldest).unlink()
            except OSError:
                pass
            self.counters["evictions"] += 1

    def _touch(self, fingerprint: str) -> None:
        """Refresh LRU recency (move to the hot end)."""
        entry = self._entries.pop(fingerprint)
        entry.hits += 1
        self._entries[fingerprint] = entry

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def lookup(self, problem, options=None) -> Optional[CacheHit]:
        """Resolve a request against the cache (exact, then ancestor).

        Returns a :class:`CacheHit` whose ``seed`` is ready for
        ``SynthesisOptions.seed_knowledge``, or None on a miss.
        """
        key = fp.problem_fingerprint(problem, options)
        entry = self._entries.get(key)
        if entry is not None:
            self._touch(key)
            self.counters["exact_hits"] += 1
            return CacheHit("exact", entry,
                            self._seed_from(entry, options, "equal"))
        bucket = fp.compatibility_key(problem, options)
        request_apps = fp.app_set_key(problem)
        best: Optional[Tuple[Tuple[int, int], str, CacheEntry, str]] = None
        # Iterate hot-to-cold so recency breaks quality ties.
        for fprint, candidate in reversed(list(self._entries.items())):
            if candidate.compat_key != bucket:
                continue
            relation = fp.ancestor_relation(request_apps, candidate.apps)
            if relation is None:
                continue
            quality = fp.match_quality(relation, candidate.apps, request_apps)
            if best is None or quality > best[0]:
                best = (quality, relation, candidate, fprint)
        if best is None:
            self.counters["misses"] += 1
            return None
        _, relation, entry, fprint = best
        seed = self._seed_from(entry, options, relation)
        if not seed:
            self.counters["misses"] += 1
            return None
        self._touch(fprint)
        self.counters["ancestor_hits"] += 1
        return CacheHit(relation, entry, seed)

    def _seed_from(self, entry: CacheEntry, options,
                   relation: str) -> SeedKnowledge:
        """Assemble the seed a hit contributes (soundness-gated).

        ``equal``/``subset``: clauses + veto + schedule hints.
        ``superset``: schedule hints only — the cached formula is
        *stronger* than the request's, so its clauses are not entailed
        (see :mod:`repro.service.fingerprint`); the schedule is replayed
        as an assumption probe, sound for any recipient.  Unknown uids
        in the hints are skipped by the probe builder, so a superset
        schedule needs no explicit restriction here.
        """
        if options is None:
            from ..core.synthesizer import SynthesisOptions
            options = SynthesisOptions()
        batches: Tuple[ClauseBatch, ...] = ()
        vetoes: Tuple[RouteVeto, ...] = ()
        if relation in ("equal", "subset"):
            if entry.clauses:
                batches = (ClauseBatch(source_routes=entry.source_routes,
                                       clauses=entry.clauses),)
            if entry.route_veto is not None:
                vetoes = (RouteVeto(limits=entry.route_veto,
                                    source=f"cache:{entry.fingerprint[:8]}"),)
        prefix = None
        if entry.schedule:
            # The prefix signature must equal the *request's* signature:
            # core.solve replays it in every stage via prefix_assumptions
            # regardless, but keeping the target signature documents who
            # the hint is for (and keeps pool/seed invariants intact).
            prefix = StagePrefix(
                signature=signature_of(options),
                stages_completed=int(options.stages),
                messages=entry.schedule,
            )
        return SeedKnowledge(clause_batches=batches, route_vetoes=vetoes,
                             stage_prefix=prefix)

    def store(self, problem, options, status: str,
              clauses: Tuple[Tuple, ...] = (),
              route_veto: Optional[Tuple[Tuple[str, int], ...]] = None,
              schedule: Tuple = (),
              work: Optional[Dict[str, int]] = None) -> Optional[CacheEntry]:
        """Write one completed request's knowledge back (LRU insert).

        ``unknown`` results with nothing learned are not stored.  An
        existing entry for the same fingerprint is replaced (the fresh
        solve's knowledge supersedes it).
        """
        if status not in ("sat", "unsat") and not clauses:
            return None
        entry = CacheEntry(
            fingerprint=fp.problem_fingerprint(problem, options),
            compat_key=fp.compatibility_key(problem, options),
            apps=fp.app_set_key(problem),
            options=fp.canonical_options(options),
            status=status,
            clauses=tuple(clauses),
            route_veto=tuple(route_veto) if route_veto else None,
            schedule=tuple(schedule),
            work=dict(work or {}),
            created=time.time(),
        )
        try:
            entry.validate()
        except ValueError:
            # A worker shipped junk (fault injection, version skew):
            # quarantine at the boundary, exactly like the pool does.
            self.counters["quarantined_entries"] += 1
            return None
        self._entries.pop(entry.fingerprint, None)
        self._sizes.pop(entry.fingerprint, None)
        try:
            size = self._write(entry)
        except OSError:
            return None  # disk trouble: the cache is only ever a hint
        self._entries[entry.fingerprint] = entry
        self._sizes[entry.fingerprint] = size
        self.counters["stores"] += 1
        self._evict()
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def statistics(self) -> Dict[str, int]:
        stats = dict(self.counters)
        stats["entries"] = len(self._entries)
        stats["bytes"] = self.total_bytes
        return stats
